(* Tests for fmm_bilinear: exact Brent-equation verification of every
   registered algorithm, recursive multiplication against the classical
   reference over Q and Z_p, operation-count formulas (the 7->6->5
   leading-coefficient story from the paper's introduction), algorithm
   composition/transposition, and the alternative-basis machinery of
   Section IV. *)

module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module AB = Fmm_bilinear.Alt_basis
module MQ = Fmm_matrix.Matrix.Q
module MI = Fmm_matrix.Matrix.I
module Q = Fmm_ring.Rat
module P = Fmm_util.Prng
module C = Fmm_util.Combinat

module Z101 = Fmm_ring.Zp.Z101
module MZ = Fmm_matrix.Matrix.Make (Z101)
module AZ = A.Apply (Z101)

let mq = Alcotest.testable (fun fmt m -> MQ.pp fmt m) MQ.equal

let random_q rng n m = MQ.random ~rng ~rows:n ~cols:m ~range:9

(* --- Brent equations: the exact correctness certificates --- *)

let test_brent_all_registered () =
  List.iter
    (fun alg ->
      Alcotest.(check bool)
        (Printf.sprintf "Brent equations hold for %s" (A.name alg))
        true (A.verify_brent alg))
    S.registry

let test_brent_rejects_corruption () =
  (* Corrupting any single coefficient of Strassen must break Brent. *)
  let u = A.u_matrix S.strassen in
  u.(0).(0) <- u.(0).(0) + 1;
  let bad =
    A.make ~name:"corrupted" ~n:2 ~m:2 ~k:2 ~u ~v:(A.v_matrix S.strassen)
      ~w:(A.w_matrix S.strassen)
  in
  Alcotest.(check bool) "corrupted Strassen fails Brent" false
    (A.verify_brent bad)

let test_brent_alt_basis_flatten () =
  let flat = AB.flatten AB.ks_winograd in
  Alcotest.(check bool) "flattened KS algorithm satisfies Brent" true
    (A.verify_brent flat)

(* --- structural data the paper quotes --- *)

let test_ranks_and_dims () =
  Alcotest.(check int) "Strassen rank 7" 7 (A.rank S.strassen);
  Alcotest.(check int) "Winograd rank 7" 7 (A.rank S.winograd);
  Alcotest.(check int) "classical 2x2 rank 8" 8 (A.rank S.classical_2x2);
  Alcotest.(check int) "Strassen^2 rank 49" 49 (A.rank S.strassen_squared);
  Alcotest.(check (pair (pair int int) int)) "Strassen^2 dims"
    ((4, 4), 4)
    (let n, m, k = A.dims S.strassen_squared in
     ((n, m), k));
  Alcotest.(check int) "KS core rank 7" 7 (A.rank AB.ks_core)

let test_additions_per_step () =
  (* Direct-evaluation additions (no operand reuse): Strassen's linear
     forms cost 18 per step, Winograd's flattened forms 24 (Winograd
     only wins through the S/T chain reuse), the KS core only 12 — the
     count behind the 5 n^omega leading coefficient. *)
  Alcotest.(check int) "Strassen adds/step" 18 (A.additions_per_step S.strassen);
  Alcotest.(check int) "Winograd flattened adds/step" 24
    (A.additions_per_step S.winograd);
  Alcotest.(check int) "KS core adds/step" 12 (A.additions_per_step AB.ks_core);
  Alcotest.(check int) "classical adds/step" 4
    (A.additions_per_step S.classical_2x2)

let test_omega0 () =
  let close a b = Float.abs (a -. b) < 1e-9 in
  Alcotest.(check bool) "Strassen omega0 = log2 7" true
    (close (A.omega0 S.strassen) (log 7. /. log 2.));
  Alcotest.(check bool) "classical omega0 = 3" true
    (close (A.omega0 S.classical_2x2) 3.);
  Alcotest.(check bool) "Strassen^2 same omega0" true
    (close (A.omega0 S.strassen_squared) (log 7. /. log 2.))

(* --- recursive multiplication vs classical reference --- *)

let check_multiply alg n m k seed =
  let rng = P.create ~seed in
  let a = random_q rng n m and b = random_q rng m k in
  let expected = MQ.mul a b in
  let got, _ = A.Apply_q.multiply alg a b in
  Alcotest.check mq
    (Printf.sprintf "%s on %dx%dx%d" (A.name alg) n m k)
    expected got

let test_multiply_strassen () =
  List.iter (fun n -> check_multiply S.strassen n n n (100 + n)) [ 1; 2; 4; 8; 16 ]

let test_multiply_winograd () =
  List.iter (fun n -> check_multiply S.winograd n n n (200 + n)) [ 2; 4; 8; 16 ]

let test_multiply_transposed () =
  List.iter (fun n -> check_multiply S.winograd_transposed n n n (300 + n)) [ 2; 4; 8 ]

let test_multiply_composed () =
  List.iter (fun n -> check_multiply S.strassen_squared n n n (400 + n)) [ 4; 16 ]

let test_multiply_rectangular () =
  (* <2,2,3> base on matching rectangular shapes *)
  let alg = A.classical ~n:2 ~m:2 ~k:3 in
  check_multiply alg 4 4 9 1;
  check_multiply alg 8 8 27 2

let test_multiply_one_level () =
  let rng = P.create ~seed:77 in
  let a = random_q rng 6 6 and b = random_q rng 6 6 in
  let got, counters = A.Apply_q.multiply_one_level S.strassen a b in
  Alcotest.check mq "one level Strassen 6x6" (MQ.mul a b) got;
  (* one level on 6x6: 7 products of 3x3 classical = 7*27 mults *)
  Alcotest.(check int) "mult count" (7 * 27) counters.A.Apply_q.mults

let test_multiply_nondivisible_falls_back () =
  (* 5x5 is not divisible by 2: must silently use classical. *)
  check_multiply S.strassen 5 5 5 55

(* --- operation counts: the 7 -> 6 -> 5 story --- *)

(* Direct-evaluation recurrences (no cross-product reuse):
   mults(n) = 7 mults(n/2); adds(n) = 7 adds(n/2) + adds_per_step*(n/2)^2.
   Closed form for n = 2^l: adds(n) = adds_per_step/3 * (n^log7 - n^2)
   when the base is 1x1 (adds(1)=0). *)
let expected_adds alg n =
  let s = A.additions_per_step alg in
  let l = C.log2_exact n in
  let rec go level size acc =
    if level = 0 then acc
    else
      let subproblems = C.pow_int 7 (l - level) in
      let block = size / 2 in
      go (level - 1) block (acc + (subproblems * s * block * block))
  in
  go l n 0

let test_mult_counts_strassen () =
  List.iter
    (fun n ->
      let rng = P.create ~seed:n in
      let a = random_q rng n n and b = random_q rng n n in
      let _, counters = A.Apply_q.multiply S.strassen a b in
      let l = C.log2_exact n in
      Alcotest.(check int)
        (Printf.sprintf "mults(%d) = 7^%d" n l)
        (C.pow_int 7 l) counters.A.Apply_q.mults;
      Alcotest.(check int)
        (Printf.sprintf "adds(%d) matches recurrence" n)
        (expected_adds S.strassen n)
        counters.A.Apply_q.adds)
    [ 2; 4; 8; 16 ]

let test_leading_coefficient_ordering () =
  (* At n = 32, measured addition totals must reflect the per-step
     costs: KS core (12) < Strassen (18) < Winograd without reuse (24).
     All perform 7^5 multiplications. *)
  let total alg =
    let rng = P.create ~seed:5 in
    let a = random_q rng 32 32 and b = random_q rng 32 32 in
    let _, c = A.Apply_q.multiply alg a b in
    c.A.Apply_q.adds
  in
  let ks = total AB.ks_core and wino = total S.winograd and str = total S.strassen in
  Alcotest.(check bool) "ks < strassen" true (ks < str);
  Alcotest.(check bool) "strassen < winograd-without-reuse" true (str < wino)

(* --- composition and symmetry --- *)

let test_compose_matches_nested () =
  (* strassen (x) strassen multiplying 4x4 must equal classical. *)
  let rng = P.create ~seed:9 in
  let a = random_q rng 4 4 and b = random_q rng 4 4 in
  let got, counters = A.Apply_q.multiply_one_level S.strassen_squared a b in
  Alcotest.check mq "strassen^2 4x4" (MQ.mul a b) got;
  Alcotest.(check int) "49 scalar mults" 49 counters.A.Apply_q.mults

let test_compose_rectangular () =
  let alg = A.compose (A.classical ~n:2 ~m:2 ~k:3) (A.classical ~n:3 ~m:3 ~k:2) in
  let n, m, k = A.dims alg in
  Alcotest.(check (list int)) "composed dims" [ 6; 6; 6 ] [ n; m; k ];
  Alcotest.(check int) "composed rank" (12 * 18) (A.rank alg);
  Alcotest.(check bool) "composed Brent" true (A.verify_brent alg)

let test_transpose_involution_brent () =
  let tt = A.transpose_alg (A.transpose_alg S.strassen) in
  Alcotest.(check bool) "transpose^2 satisfies Brent" true (A.verify_brent tt);
  let talg = A.transpose_alg (A.classical ~n:2 ~m:3 ~k:4) in
  let n, m, k = A.dims talg in
  Alcotest.(check (list int)) "transposed dims" [ 4; 3; 2 ] [ n; m; k ];
  Alcotest.(check bool) "transposed rect Brent" true (A.verify_brent talg)

(* --- alternative basis (Section IV) --- *)

let test_alt_basis_multiply () =
  List.iter
    (fun n ->
      let rng = P.create ~seed:(500 + n) in
      let a = random_q rng n n and b = random_q rng n n in
      let c, _, _ = AB.Transform_q.multiply AB.ks_winograd a b in
      Alcotest.check mq (Printf.sprintf "ABMM %dx%d" n n) (MQ.mul a b) c)
    [ 2; 4; 8; 16 ]

let test_alt_basis_transform_cost_negligible () =
  (* Transform additions are Theta(n^2 log n); bilinear additions are
     Theta(n^omega0). The ratio must drop as n grows (Theorem 4.1's
     premise). *)
  let ratio n =
    let rng = P.create ~seed:n in
    let a = random_q rng n n and b = random_q rng n n in
    let _, mul_c, tr_c = AB.Transform_q.multiply AB.ks_winograd a b in
    float_of_int tr_c.A.Apply_q.adds /. float_of_int mul_c.A.Apply_q.adds
  in
  let r8 = ratio 8 and r32 = ratio 32 in
  Alcotest.(check bool) "transform share shrinks" true (r32 < r8)

let test_alt_basis_bases_invertible () =
  (* make already computed integer inverses; verify nu_inv * nu = I. *)
  let check name m minv =
    let prod = AB.mat_mul minv m in
    let n = Array.length m in
    let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
    Alcotest.(check bool) name true (prod = id)
  in
  let t = AB.ks_winograd in
  check "nu_inv * nu = I" (AB.nu t) (AB.nu_inv t);
  (* phi and psi invert too (via integer_inverse) *)
  check "phi_inv * phi = I" (AB.phi t) (AB.integer_inverse (AB.phi t));
  check "psi_inv * psi = I" (AB.psi t) (AB.integer_inverse (AB.psi t))

let test_alt_basis_rejects_singular () =
  let singular = [| [| 1; 1; 0; 0 |]; [| 1; 1; 0; 0 |]; [| 0; 0; 1; 0 |]; [| 0; 0; 0; 1 |] |] in
  Alcotest.(check bool) "singular nu rejected" true
    (try
       ignore (AB.make ~name:"bad" ~core:AB.ks_core ~phi:AB.ks_phi ~psi:AB.ks_psi ~nu:singular);
       false
     with Failure _ -> true)


(* --- Winograd with operand reuse --- *)

let test_winograd_reuse_correct () =
  List.iter
    (fun n ->
      let rng = P.create ~seed:(700 + n) in
      let a = random_q rng n n and b = random_q rng n n in
      let got, _ = Fmm_bilinear.Strassen.Winograd_reuse_q.multiply a b in
      Alcotest.check mq (Printf.sprintf "winograd-reuse %dx%d" n n)
        (MQ.mul a b) got)
    [ 1; 2; 4; 8; 16; 6 (* falls back to classical on odd splits *) ]

let test_winograd_reuse_opcounts () =
  (* adds(n) = 7 adds(n/2) + 15 (n/2)^2, adds(1) = 0
     => adds(n) = 5 n^{log2 7} - 5 n^2; total ops = 6 n^w - 5 n^2. *)
  List.iter
    (fun n ->
      let rng = P.create ~seed:n in
      let a = random_q rng n n and b = random_q rng n n in
      let _, c = Fmm_bilinear.Strassen.Winograd_reuse_q.multiply a b in
      let w = C.pow_int 7 (C.log2_exact n) in
      Alcotest.(check int)
        (Printf.sprintf "winograd-reuse adds(%d)" n)
        ((5 * w) - (5 * n * n))
        c.A.Apply_q.adds;
      Alcotest.(check int) "mults" w c.A.Apply_q.mults)
    [ 2; 4; 8; 16; 32 ]


(* --- general base case (Table I row 4) --- *)

let test_general_base_case () =
  let alg = S.strassen_x_classical3 in
  let n, m, k = A.dims alg in
  Alcotest.(check (list int)) "dims <6,6,6>" [ 6; 6; 6 ] [ n; m; k ];
  Alcotest.(check int) "rank 189" 189 (A.rank alg);
  let close a b = Float.abs (a -. b) < 1e-9 in
  Alcotest.(check bool) "omega0 = log_6 189" true
    (close (A.omega0 alg) (log 189. /. log 6.));
  (* correctness via random multiplication over Z_101 (full Brent would
     cost ~1.7e9 ops) *)
  let rng = P.create ~seed:66 in
  let a = MZ.init 6 6 (fun _ _ -> Z101.random rng) in
  let b = MZ.init 6 6 (fun _ _ -> Z101.random rng) in
  let got, counters = AZ.multiply_one_level alg a b in
  Alcotest.(check bool) "multiplies correctly" true (MZ.equal got (MZ.mul a b));
  Alcotest.(check int) "189 scalar mults" 189 counters.AZ.mults


(* --- basis search (the Karstadt-Schwartz optimization) --- *)

module BS = Fmm_bilinear.Basis_search

let test_basis_search_rediscovers_ks () =
  (* from Winograd, the search must reach the 12-additions-per-step
     structure (nnz 10/10/10) that Karstadt-Schwartz published and
     Alt_basis.ks_winograd derives by hand *)
  let r = BS.search ~seed:1 S.winograd in
  Alcotest.(check int) "adds/step 12" 12 r.BS.additions_per_step;
  Alcotest.(check int) "nnz U" 10 r.BS.nnz_u;
  Alcotest.(check int) "nnz V" 10 r.BS.nnz_v;
  Alcotest.(check int) "nnz W" 10 r.BS.nnz_w;
  Alcotest.(check bool) "flatten satisfies Brent" true
    (A.verify_brent (AB.flatten r.BS.alt))

let test_basis_search_flatten_is_input () =
  (* the construction is exact: flattening the searched algorithm gives
     back the original (U, V, W) *)
  let r = BS.search ~seed:2 S.winograd in
  let flat = AB.flatten r.BS.alt in
  Alcotest.(check bool) "U recovered" true (A.u_matrix flat = A.u_matrix S.winograd);
  Alcotest.(check bool) "V recovered" true (A.v_matrix flat = A.v_matrix S.winograd);
  Alcotest.(check bool) "W recovered" true (A.w_matrix flat = A.w_matrix S.winograd)

let test_basis_search_on_strassen () =
  (* Strassen sparsifies too (its flattened forms cost 18/step; any
     improvement demonstrates the mechanism) *)
  let r = BS.search ~seed:3 S.strassen in
  Alcotest.(check bool)
    (Printf.sprintf "searched (%d) <= direct (%d)" r.BS.additions_per_step
       (A.additions_per_step S.strassen))
    true
    (r.BS.additions_per_step <= A.additions_per_step S.strassen);
  Alcotest.(check bool) "correct" true (A.verify_brent (AB.flatten r.BS.alt))

let test_basis_search_multiply () =
  (* the searched alternative-basis algorithm actually multiplies *)
  let r = BS.search ~seed:4 S.winograd in
  let rng = P.create ~seed:77 in
  let a = random_q rng 8 8 and b = random_q rng 8 8 in
  let c, _, _ = AB.Transform_q.multiply r.BS.alt a b in
  Alcotest.check mq "searched ABMM multiplies" (MQ.mul a b) c

let test_basis_search_rejects_non_2x2 () =
  Alcotest.check_raises "non-2x2" (Invalid_argument "Basis_search.search: 2x2 only")
    (fun () -> ignore (BS.search ~seed:1 S.strassen_squared))

(* --- de Groote symmetry conjugates --- *)

let test_conjugates_brent () =
  List.iter
    (fun base ->
      let conjs = A.conjugates_2x2 base in
      Alcotest.(check int) "eight conjugates" 8 (List.length conjs);
      List.iter
        (fun alg ->
          Alcotest.(check bool)
            (A.name alg ^ " satisfies Brent")
            true (A.verify_brent alg))
        conjs)
    [ S.strassen; S.winograd ]

let test_conjugates_multiply () =
  let rng = P.create ~seed:31 in
  let a = random_q rng 8 8 and b = random_q rng 8 8 in
  let expected = MQ.mul a b in
  List.iter
    (fun alg ->
      let got, _ = A.Apply_q.multiply alg a b in
      Alcotest.check mq (A.name alg ^ " multiplies") expected got)
    (A.conjugates_2x2 S.strassen)

let test_conjugates_distinct () =
  (* the 8 conjugates of Strassen are pairwise distinct as (U,V,W) *)
  let reprs =
    List.map
      (fun alg -> (A.u_matrix alg, A.v_matrix alg, A.w_matrix alg))
      (A.conjugates_2x2 S.strassen)
  in
  Alcotest.(check int) "pairwise distinct" 8
    (List.length (List.sort_uniq compare reprs))

let test_conjugate_identity_is_identity () =
  let id = A.conjugate_2x2 S.winograd ~swap_x:false ~swap_y:false ~swap_z:false in
  Alcotest.(check bool) "identity conjugation preserves U" true
    (A.u_matrix id = A.u_matrix S.winograd);
  Alcotest.check_raises "rejects non-2x2"
    (Invalid_argument "Algorithm.conjugate_2x2: 2x2 only") (fun () ->
      ignore
        (A.conjugate_2x2 S.strassen_squared ~swap_x:true ~swap_y:false
           ~swap_z:false))

(* --- property tests over Z_p: Schwartz-Zippel style --- *)

let prop_strassen_zp =
  QCheck2.Test.make ~name:"Strassen = classical over Z101" ~count:50
    (QCheck2.Gen.int_range 0 10_000) (fun seed ->
      let rng = P.create ~seed in
      let n = 1 lsl P.int_range rng 0 4 in
      let a = MZ.init n n (fun _ _ -> Z101.random rng) in
      let b = MZ.init n n (fun _ _ -> Z101.random rng) in
      let got, _ = AZ.multiply S.strassen a b in
      MZ.equal got (MZ.mul a b))

let prop_all_algs_random_shape =
  QCheck2.Test.make ~name:"every registered algorithm multiplies correctly"
    ~count:30 (QCheck2.Gen.int_range 0 10_000) (fun seed ->
      let rng = P.create ~seed in
      List.for_all
        (fun alg ->
          let bn, bm, bk = A.dims alg in
          let depth = P.int_range rng 0 1 in
          let n = bn * if depth = 1 then bn else 1 in
          let m = bm * if depth = 1 then bm else 1 in
          let k = bk * if depth = 1 then bk else 1 in
          let a = MZ.init n m (fun _ _ -> Z101.random rng) in
          let b = MZ.init m k (fun _ _ -> Z101.random rng) in
          let got, _ = AZ.multiply alg a b in
          MZ.equal got (MZ.mul a b))
        S.registry)

let prop_compose_brent =
  QCheck2.Test.make ~name:"composition preserves Brent" ~count:8
    (QCheck2.Gen.int_range 0 100) (fun seed ->
      let rng = P.create ~seed in
      let pick () = P.choose rng [ S.strassen; S.winograd; S.classical_2x2 ] in
      A.verify_brent (A.compose (pick ()) (pick ())))

let test_fingerprint () =
  (* stable on the same value *)
  Alcotest.(check string) "stable" (A.fingerprint S.strassen)
    (A.fingerprint S.strassen);
  (* distinguishes distinct algorithms *)
  Alcotest.(check bool) "strassen vs winograd" false
    (A.fingerprint S.strassen = A.fingerprint S.winograd);
  (* the cache-key property: same display name, different coefficients
     -> different fingerprints (names alone used to alias the CDAG
     caches between basis-search variants) *)
  let u = A.u_matrix S.strassen in
  u.(0).(0) <- u.(0).(0) + 1;
  let variant =
    A.make ~name:(A.name S.strassen) ~n:2 ~m:2 ~k:2 ~u
      ~v:(A.v_matrix S.strassen) ~w:(A.w_matrix S.strassen)
  in
  Alcotest.(check bool) "same name, different U" false
    (A.fingerprint S.strassen = A.fingerprint variant);
  (* and the name is still readable in the key *)
  let fp = A.fingerprint S.strassen in
  Alcotest.(check bool) "prefixed by name" true
    (String.length fp > String.length (A.name S.strassen)
    && String.sub fp 0 (String.length (A.name S.strassen)) = A.name S.strassen)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fmm_bilinear"
    [
      ( "brent",
        [
          Alcotest.test_case "all registered" `Quick test_brent_all_registered;
          Alcotest.test_case "rejects corruption" `Quick test_brent_rejects_corruption;
          Alcotest.test_case "alt basis flatten" `Quick test_brent_alt_basis_flatten;
        ] );
      ( "structure",
        [
          Alcotest.test_case "ranks/dims" `Quick test_ranks_and_dims;
          Alcotest.test_case "additions per step" `Quick test_additions_per_step;
          Alcotest.test_case "omega0" `Quick test_omega0;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
        ] );
      ( "multiply",
        [
          Alcotest.test_case "strassen" `Quick test_multiply_strassen;
          Alcotest.test_case "winograd" `Quick test_multiply_winograd;
          Alcotest.test_case "transposed" `Quick test_multiply_transposed;
          Alcotest.test_case "composed" `Quick test_multiply_composed;
          Alcotest.test_case "rectangular" `Quick test_multiply_rectangular;
          Alcotest.test_case "one level" `Quick test_multiply_one_level;
          Alcotest.test_case "non-divisible fallback" `Quick
            test_multiply_nondivisible_falls_back;
          Alcotest.test_case "winograd reuse correct" `Quick
            test_winograd_reuse_correct;
          Alcotest.test_case "winograd reuse opcounts" `Quick
            test_winograd_reuse_opcounts;
          qc prop_strassen_zp;
          qc prop_all_algs_random_shape;
        ] );
      ( "opcounts",
        [
          Alcotest.test_case "strassen counts" `Quick test_mult_counts_strassen;
          Alcotest.test_case "leading coefficient ordering" `Quick
            test_leading_coefficient_ordering;
        ] );
      ( "compose",
        [
          Alcotest.test_case "matches nested" `Quick test_compose_matches_nested;
          Alcotest.test_case "rectangular" `Quick test_compose_rectangular;
          Alcotest.test_case "transpose" `Quick test_transpose_involution_brent;
          Alcotest.test_case "general base case" `Quick test_general_base_case;
          Alcotest.test_case "conjugates brent" `Quick test_conjugates_brent;
          Alcotest.test_case "conjugates multiply" `Quick test_conjugates_multiply;
          Alcotest.test_case "conjugates distinct" `Quick test_conjugates_distinct;
          Alcotest.test_case "identity conjugation" `Quick
            test_conjugate_identity_is_identity;
          qc prop_compose_brent;
        ] );
      ( "basis_search",
        [
          Alcotest.test_case "rediscovers KS" `Quick test_basis_search_rediscovers_ks;
          Alcotest.test_case "flatten = input" `Quick test_basis_search_flatten_is_input;
          Alcotest.test_case "strassen" `Quick test_basis_search_on_strassen;
          Alcotest.test_case "multiplies" `Quick test_basis_search_multiply;
          Alcotest.test_case "rejects non-2x2" `Quick test_basis_search_rejects_non_2x2;
        ] );
      ( "alt_basis",
        [
          Alcotest.test_case "multiply" `Quick test_alt_basis_multiply;
          Alcotest.test_case "transform negligible" `Quick
            test_alt_basis_transform_cost_negligible;
          Alcotest.test_case "bases invertible" `Quick
            test_alt_basis_bases_invertible;
          Alcotest.test_case "rejects singular" `Quick
            test_alt_basis_rejects_singular;
        ] );
    ]
