(* Tests for Fmm_opt.Optimizer: the two-sided acceptance sandwich
   (best found <= best fixed policy, >= the Theorem 1.1 bound), the
   legality of every schedule the search accepts (re-verified here,
   independently of the optimizer's internal oracle), and the
   determinism contract — identical reports at any --jobs, including
   the OPT registry experiments' JSON. *)

module O = Fmm_opt.Optimizer
module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module W = Fmm_machine.Workload
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module CM = Fmm_machine.Cache_machine
module Ord = Fmm_machine.Orders
module Tc = Fmm_analysis.Trace_check
module Diag = Fmm_analysis.Diagnostic
module B = Fmm_bounds.Bounds
module Exp = Fmm_obs.Experiment
module Sink = Fmm_obs.Sink
module Json = Fmm_obs.Json

let cdag8 = Cd.build S.strassen ~n:8
let w8 = W.of_cdag cdag8

let report ?(jobs = 1) ?(seed = 1) ?(n = 8) ?(m = 32) ?oracle_mode () =
  O.optimize_cdag (Cd.build S.strassen ~n) ~cache_size:m ~beam:3 ~iters:2 ~seed
    ~jobs ?oracle_mode

(* --- the acceptance sandwich --- *)

let test_sandwich () =
  List.iter
    (fun (n, m) ->
      let r = report ~n ~m () in
      let fixed = List.filter_map snd r.O.baselines in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: some fixed policy ran" n)
        true (fixed <> []);
      let best_fixed = List.fold_left min max_int fixed in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d M=%d: best <= best fixed (%d vs %d)" n m
           r.O.best.O.io best_fixed)
        true
        (r.O.best.O.io <= best_fixed);
      Alcotest.(check bool)
        (Printf.sprintf "n=%d M=%d: best >= Thm 1.1 bound" n m)
        true
        (float_of_int r.O.best.O.io >= B.fast_sequential ~n ~m ()))
    [ (4, 16); (8, 32); (8, 64) ]

let test_history_monotone () =
  let r = report () in
  Alcotest.(check int) "history length" (r.O.iterations + 1)
    (List.length r.O.history);
  let rec mono = function
    | a :: (b :: _ as rest) -> a >= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "elitist: best never regresses" true
    (mono r.O.history);
  Alcotest.(check int) "last history entry is the best" r.O.best.O.io
    (List.fold_left (fun _ x -> x) 0 r.O.history)

(* --- every accepted schedule is legal (independent re-check) --- *)

let test_accepted_schedules_legal () =
  List.iter
    (fun seed ->
      let r = report ~seed () in
      List.iter
        (fun ev ->
          let ctx = ev.O.candidate.O.provenance in
          (* the candidate is a valid topological order *)
          Alcotest.(check bool)
            (Printf.sprintf "%s: order valid" ctx)
            true
            (W.is_valid_order w8 (Array.to_list ev.O.candidate.O.order));
          (* dynamic replay agrees with the scheduler's counters *)
          let c =
            CM.replay
              { CM.cache_size = 32; allow_recompute = true }
              w8 ev.O.result.Sch.trace
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: replay io" ctx)
            ev.O.io (Tr.io c);
          (* static check: zero violations AND zero lint findings *)
          let tc = Tc.check ~cache_size:32 w8 ev.O.result.Sch.trace in
          Alcotest.(check int)
            (Printf.sprintf "%s: no violations" ctx)
            0
            (Diag.n_errors tc.Tc.report);
          Alcotest.(check int)
            (Printf.sprintf "%s: no dead loads" ctx)
            0 tc.Tc.dead_loads;
          Alcotest.(check int)
            (Printf.sprintf "%s: no redundant stores" ctx)
            0 tc.Tc.redundant_stores)
        r.O.beam)
    [ 1; 2; 5 ]

(* --- determinism: same report at any jobs --- *)

let strip_results r = (r.O.best.O.io, r.O.evaluated, r.O.rejected, r.O.accepted,
                       r.O.history,
                       List.map (fun ev -> (ev.O.io, ev.O.candidate.O.provenance))
                         r.O.beam,
                       r.O.baselines)

let test_search_jobs_invariant () =
  let seq = report ~jobs:1 () in
  let par = report ~jobs:4 () in
  Alcotest.(check bool) "jobs 1 = jobs 4" true
    (strip_results seq = strip_results par);
  (* and the traces themselves, not just the summaries *)
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical trace" a.O.candidate.O.provenance)
        true
        (a.O.result.Sch.trace = b.O.result.Sch.trace))
    seq.O.beam par.O.beam

(* the incremental oracle must not change the search: byte-identical
   best schedule, beam, history and counters vs the full-replay
   reference, while re-interpreting strictly fewer trace events *)
let test_oracle_modes_identical () =
  List.iter
    (fun (n, m) ->
      let full = report ~n ~m ~oracle_mode:O.Full_replay () in
      let inc = report ~n ~m ~oracle_mode:O.Incremental () in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d M=%d: identical search" n m)
        true
        (strip_results full = strip_results inc);
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: identical trace" a.O.candidate.O.provenance)
            true
            (a.O.result.Sch.trace = b.O.result.Sch.trace))
        full.O.beam inc.O.beam;
      (* full replay re-interprets everything, by definition *)
      Alcotest.(check int)
        (Printf.sprintf "n=%d: full replay replays all" n)
        full.O.oracle_total full.O.oracle_replayed;
      Alcotest.(check int)
        (Printf.sprintf "n=%d: same admitted volume" n)
        full.O.oracle_total inc.O.oracle_total;
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: incremental replays less (%d of %d)" n
           inc.O.oracle_replayed inc.O.oracle_total)
        true
        (inc.O.oracle_replayed < inc.O.oracle_total))
    [ (4, 16); (8, 32) ]

let test_seed_sensitivity () =
  (* different seeds explore different candidates (the searches are
     genuinely seeded, not ignoring the parameter) *)
  let a = report ~seed:1 () and b = report ~seed:2 () in
  Alcotest.(check bool) "provenances differ across seeds" true
    (List.map (fun ev -> ev.O.candidate.O.provenance) a.O.beam
    <> List.map (fun ev -> ev.O.candidate.O.provenance) b.O.beam
    || a.O.evaluated <> b.O.evaluated
    || strip_results a <> strip_results b)

(* --- argument validation --- *)

let test_validation () =
  let order = Ord.recursive_dfs cdag8 in
  Alcotest.(check bool) "rejects invalid seed order" true
    (try
       ignore
         (O.search w8 ~cache_size:32 ~orders:[ ("bogus", List.rev order) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects empty orders" true
    (try
       ignore (O.search w8 ~cache_size:32 ~orders:[]);
       false
     with Invalid_argument _ -> true)

(* --- the OPT registry experiments: byte-identical JSON at any jobs --- *)

let report_string outcomes =
  Json.to_string ~indent:2
    (Sink.report_to_json ~generator:"test_opt" ~created:0.
       (List.map Sink.strip_volatile outcomes))

let test_opt_experiments_jobs_invariant () =
  let es =
    match Fmm_experiments.Experiments.select (Some [ "OPT1"; "OPT3" ]) with
    | Ok es -> es
    | Error msg -> Alcotest.fail msg
  in
  let seq = Fmm_experiments.Experiments.run_selected ~jobs:1 es in
  let par = Fmm_experiments.Experiments.run_selected ~jobs:4 es in
  Alcotest.(check string) "OPT JSON byte-identical at jobs 1 vs 4"
    (report_string seq) (report_string par)

let () =
  Alcotest.run "fmm_opt"
    [
      ( "search",
        [
          Alcotest.test_case "acceptance sandwich" `Quick test_sandwich;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "legality",
        [
          Alcotest.test_case "accepted schedules" `Quick
            test_accepted_schedules_legal;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs invariant" `Quick test_search_jobs_invariant;
          Alcotest.test_case "oracle modes identical" `Quick
            test_oracle_modes_identical;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "registry OPT jobs invariant" `Quick
            test_opt_experiments_jobs_invariant;
        ] );
    ]
