(* Tests for fmm_analysis: known-good CDAGs, traces and parallel
   assignments produce zero diagnostics; deliberately corrupted ones
   (edge removed, load deleted, overflowed cache, vertex reassigned
   cross-processor, ...) each trigger the expected diagnostic with a
   precise location; and the static trace checker agrees with the
   dynamic legality oracle on every scheduler's output. *)

module D = Fmm_graph.Digraph
module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module CM = Fmm_machine.Cache_machine
module PE = Fmm_machine.Par_exec
module Dg = Fmm_analysis.Diagnostic
module Lint = Fmm_analysis.Cdag_lint
module Tc = Fmm_analysis.Trace_check
module Pc = Fmm_analysis.Par_check

let cdag2 = Cd.build S.strassen ~n:2
let cdag4 = Cd.build S.strassen ~n:4
let cdag8 = Cd.build S.strassen ~n:8
let w4 = W.of_cdag cdag4
let w8 = W.of_cdag cdag8

let has_code report code =
  List.exists (fun d -> d.Dg.code = code) report.Dg.diags

let find_code report code =
  List.find (fun d -> d.Dg.code = code) report.Dg.diags

(* plain substring search (no Str dependency) *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- diagnostics core --- *)

let test_report_rendering () =
  let c = Dg.Collector.create ~pass:"p" ~title:"t" in
  Dg.Collector.addf c Dg.Info ~code:"i" Dg.Global "fyi";
  Dg.Collector.addf c Dg.Error ~code:"e"
    (Dg.Step { step = 3; vertex = Some 7 })
    "boom %d" 42;
  let r = Dg.Collector.report c in
  Alcotest.(check int) "errors" 1 (Dg.n_errors r);
  Alcotest.(check int) "infos" 1 (Dg.n_infos r);
  Alcotest.(check bool) "not clean" false (Dg.is_clean r);
  Alcotest.(check bool) "not silent" false (Dg.is_silent r);
  (* human render sorts errors first even though the info came first *)
  let human = Dg.render r in
  Alcotest.(check bool) "rendered" true (contains human "boom 42");
  Alcotest.(check bool) "summary line" true (contains human "1 error(s)");
  let e = find_code r "e" in
  Alcotest.(check string) "located line"
    "error[p/e] @ step 3 (vertex 7): boom 42" (Dg.to_string e);
  let machine = Dg.to_machine_string e in
  Alcotest.(check string) "machine line" "error\tp\te\tstep\t3\t7\tboom 42"
    machine;
  (* merge concatenates *)
  let m = Dg.merge ~title:"m" [ r; r ] in
  Alcotest.(check int) "merged errors" 2 (Dg.n_errors m)

(* --- CDAG lint: clean graphs --- *)

let test_lint_clean () =
  List.iter
    (fun (name, cdag) ->
      let r = Lint.lint cdag in
      Alcotest.(check int) (name ^ " zero diagnostics") 0
        (List.length r.Dg.diags))
    [
      ("strassen n=2", cdag2);
      ("strassen n=4", cdag4);
      ("strassen n=8", cdag8);
      ("winograd n=4", Cd.build S.winograd ~n:4);
    ]

(* Rebuild a CDAG's graph minus one edge (Digraph is append-only, so
   corruption means building a fresh copy). *)
let copy_graph_without g ~src ~dst =
  let g' = D.create () in
  ignore (D.add_vertices g' (D.n_vertices g));
  for v = 0 to D.n_vertices g - 1 do
    List.iter
      (fun u ->
        if not (u = src && v = dst) then D.add_edge g' u v)
      (D.in_neighbors g v)
  done;
  g'

let test_lint_edge_removed () =
  (* drop one operand edge of a Mult vertex: degree-bound error at
     exactly that vertex *)
  let g = Cd.graph cdag4 in
  let mult =
    List.find
      (fun v -> Cd.role cdag4 v = Cd.Mult)
      (List.init (Cd.n_vertices cdag4) (fun i -> i))
  in
  let op = List.hd (D.in_neighbors g mult) in
  let g' = copy_graph_without g ~src:op ~dst:mult in
  let r =
    Lint.lint_graph ~graph:g' ~role:(Cd.role cdag4) ~inputs:(Cd.inputs cdag4)
      ~outputs:(Cd.outputs cdag4) ~base:(Cd.base_algorithm cdag4) ()
  in
  Alcotest.(check bool) "not clean" false (Dg.is_clean r);
  let d = find_code r "degree-bound" in
  Alcotest.(check bool) "located at the mult" true (d.Dg.loc = Dg.Vertex mult)

let test_lint_extra_edge () =
  (* an illegal Dec -> Enc_a back edge: role-edge (and cycle-free) *)
  let g = Cd.graph cdag2 in
  let g' = copy_graph_without g ~src:(-1) ~dst:(-1) in
  let enc =
    List.find
      (fun v -> Cd.role cdag2 v = Cd.Enc_a)
      (List.init (Cd.n_vertices cdag2) (fun i -> i))
  in
  let dec = (Cd.outputs cdag2).(0) in
  D.add_edge g' dec enc;
  let r =
    Lint.lint_graph ~graph:g' ~role:(Cd.role cdag2) ~inputs:(Cd.inputs cdag2)
      ~outputs:(Cd.outputs cdag2) ~base:(Cd.base_algorithm cdag2) ()
  in
  Alcotest.(check bool) "role-edge reported" true (has_code r "role-edge");
  let d = find_code r "role-edge" in
  Alcotest.(check bool) "edge located" true
    (d.Dg.loc = Dg.Edge { src = dec; dst = enc })

let test_lint_workload_hygiene () =
  (* clean butterfly-style workload *)
  let g = D.create () in
  let ids = D.add_vertices g 3 in
  D.add_edge g ids.(0) ids.(2);
  D.add_edge g ids.(1) ids.(2);
  let w = W.make ~graph:g ~inputs:[| ids.(0); ids.(1) |] ~outputs:[| ids.(2) |] () in
  Alcotest.(check int) "clean workload" 0
    (List.length (Lint.lint_workload w).Dg.diags);
  (* unused input: dead-vertex warning *)
  let g2 = D.create () in
  let ids2 = D.add_vertices g2 3 in
  D.add_edge g2 ids2.(0) ids2.(2);
  let w2 =
    W.make ~graph:g2 ~inputs:[| ids2.(0); ids2.(1) |] ~outputs:[| ids2.(2) |] ()
  in
  let r = Lint.lint_workload w2 in
  Alcotest.(check bool) "dead vertex warned" true (has_code r "dead-vertex");
  Alcotest.(check bool) "still clean of errors" true (Dg.is_clean r)

(* --- trace checker: clean schedules --- *)

let test_trace_clean_schedulers () =
  List.iter
    (fun (name, cdag, w, m, run) ->
      let res : Sch.result = run () in
      let chk = Tc.check ~cache_size:m w res.Sch.trace in
      Alcotest.(check int) (name ^ " zero errors") 0 (Dg.n_errors chk.report);
      Alcotest.(check int) (name ^ " zero warnings") 0
        (Dg.n_warnings chk.report);
      (* counters agree with the dynamic oracle *)
      let dyn =
        CM.replay { CM.cache_size = m; allow_recompute = true } w res.Sch.trace
      in
      Alcotest.(check int) (name ^ " loads agree") dyn.Tr.loads
        chk.counters.Tr.loads;
      Alcotest.(check int) (name ^ " stores agree") dyn.Tr.stores
        chk.counters.Tr.stores;
      Alcotest.(check int) (name ^ " recomputes agree") dyn.Tr.recomputes
        chk.counters.Tr.recomputes;
      ignore cdag)
    [
      ( "lru n=4",
        cdag4,
        w4,
        24,
        fun () -> Sch.run_lru w4 ~cache_size:24 (Ord.recursive_dfs cdag4) );
      ( "lru n=8",
        cdag8,
        w8,
        64,
        fun () -> Sch.run_lru w8 ~cache_size:64 (Ord.recursive_dfs cdag8) );
      ( "belady n=8",
        cdag8,
        w8,
        32,
        fun () -> Sch.run_belady w8 ~cache_size:32 (Ord.recursive_dfs cdag8) );
      ( "remat n=4",
        cdag4,
        w4,
        24,
        fun () -> Sch.run_rematerialize w4 ~cache_size:24 (Ord.recursive_dfs cdag4) );
      ( "remat n=8",
        cdag8,
        w8,
        80,
        fun () -> Sch.run_rematerialize w8 ~cache_size:80 (Ord.recursive_dfs cdag8) );
    ]

let test_trace_recompute_attribution () =
  let res = Sch.run_rematerialize w8 ~cache_size:32 (Ord.recursive_dfs cdag8) in
  let chk = Tc.check ~cache_size:32 w8 res.Sch.trace in
  Alcotest.(check bool) "remat clean of errors" true (Dg.is_clean chk.report);
  (* the dynamic oracle's recompute total equals the per-vertex sum *)
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 chk.Tc.recomputed in
  Alcotest.(check int) "attribution sums" res.Sch.counters.Tr.recomputes total;
  Alcotest.(check bool) "recomputation info emitted" true
    (res.Sch.counters.Tr.recomputes = 0
    || has_code chk.Tc.report "recomputation")

(* --- trace checker: seeded corruptions --- *)

let lru_trace m = (Sch.run_lru w4 ~cache_size:m (Ord.recursive_dfs cdag4)).Sch.trace

let test_trace_missing_load () =
  let trace = lru_trace 16 in
  let removed = ref (-1) and victim = ref (-1) in
  let corrupted =
    List.filteri
      (fun i e ->
        match e with
        | Tr.Load v when !removed < 0 ->
          removed := i;
          victim := v;
          false
        | _ -> true)
      trace
  in
  let chk = Tc.check ~cache_size:16 w4 corrupted in
  Alcotest.(check bool) "errors found" false (Dg.is_clean chk.report);
  let d = find_code chk.Tc.report "operand-missing" in
  (* located at a trace step, naming the deleted value as the operand *)
  (match d.Dg.loc with
  | Dg.Step { step; vertex = Some _ } ->
    Alcotest.(check bool) "step is precise" true (step >= 0)
  | _ -> Alcotest.fail "expected step location");
  Alcotest.(check bool) "message names the lost operand" true
    (contains d.Dg.message (Printf.sprintf "operand %d" !victim))

let test_trace_overflow () =
  let trace = lru_trace 12 in
  let corrupted = List.filter (function Tr.Evict _ -> false | _ -> true) trace in
  let chk = Tc.check ~cache_size:12 w4 corrupted in
  let d = find_code chk.Tc.report "cache-overflow" in
  (match d.Dg.loc with
  | Dg.Step { step; vertex = Some _ } ->
    Alcotest.(check bool) "overflow step located" true (step >= 0)
  | _ -> Alcotest.fail "expected step location");
  Alcotest.(check bool) "peak above M" true (chk.Tc.peak_occupancy > 12)

let test_trace_missing_final_store () =
  let trace = lru_trace 16 in
  let out = (Cd.outputs cdag4).(0) in
  let corrupted =
    List.filter (function Tr.Store v when v = out -> false | _ -> true) trace
  in
  let chk = Tc.check ~cache_size:16 w4 corrupted in
  let d = find_code chk.Tc.report "missing-final-store" in
  Alcotest.(check bool) "located at the output" true (d.Dg.loc = Dg.Vertex out)

let test_trace_output_never_computed () =
  let out = (Cd.outputs cdag4).(0) in
  let corrupted =
    List.filter
      (function
        | Tr.Compute v when v = out -> false
        | Tr.Store v when v = out -> false
        | _ -> true)
      (lru_trace 16)
  in
  let chk = Tc.check ~cache_size:16 w4 corrupted in
  let d = find_code chk.Tc.report "output-not-computed" in
  Alcotest.(check bool) "located at the output" true (d.Dg.loc = Dg.Vertex out)

let test_trace_collects_all_violations () =
  (* two independent corruptions -> (at least) two distinct errors,
     where the dynamic oracle stops at the first *)
  let trace = lru_trace 16 in
  let out = (Cd.outputs cdag4).(0) in
  let corrupted =
    List.filteri
      (fun i e ->
        (not (i = 0))
        && match e with Tr.Store v when v = out -> false | _ -> true)
      trace
  in
  let chk = Tc.check ~cache_size:16 w4 corrupted in
  Alcotest.(check bool) "at least two errors" true
    (Dg.n_errors chk.Tc.report >= 2);
  Alcotest.(check bool) "dynamic oracle stops at one" true
    (try
       ignore
         (CM.replay { CM.cache_size = 16; allow_recompute = true } w4 corrupted);
       false
     with CM.Illegal _ -> true)

let test_trace_warnings () =
  (* dead load and redundant store on a tiny two-input workload *)
  let g = D.create () in
  let ids = D.add_vertices g 3 in
  D.add_edge g ids.(0) ids.(2);
  let w =
    W.make ~graph:g ~inputs:[| ids.(0); ids.(1) |] ~outputs:[| ids.(2) |] ()
  in
  let trace =
    [
      Tr.Load ids.(0);
      Tr.Store ids.(0) (* redundant: inputs are already in slow memory *);
      Tr.Load ids.(1);
      Tr.Evict ids.(1) (* dead load: never read *);
      Tr.Compute ids.(2);
      Tr.Store ids.(2);
    ]
  in
  let chk = Tc.check ~cache_size:8 w trace in
  Alcotest.(check int) "zero errors" 0 (Dg.n_errors chk.Tc.report);
  Alcotest.(check int) "one dead load" 1 chk.Tc.dead_loads;
  Alcotest.(check int) "one redundant store" 1 chk.Tc.redundant_stores;
  let dead = find_code chk.Tc.report "dead-load" in
  (* the dead-load warning points at the load step, not the evict *)
  Alcotest.(check bool) "dead load located at load step" true
    (dead.Dg.loc = Dg.Step { step = 2; vertex = Some ids.(1) });
  Alcotest.(check bool) "redundant store present" true
    (has_code chk.Tc.report "redundant-store");
  (* hygiene findings are Lint severity: they never fail `fmmlab
     analyze` on their own, only under --max-warnings *)
  Alcotest.(check int) "two lints" 2 (Dg.n_lints chk.Tc.report);
  Alcotest.(check int) "zero warnings" 0 (Dg.n_warnings chk.Tc.report);
  Alcotest.(check bool) "dead-load severity is Lint" true
    (dead.Dg.severity = Dg.Lint);
  Alcotest.(check bool) "redundant-store severity is Lint" true
    ((find_code chk.Tc.report "redundant-store").Dg.severity = Dg.Lint);
  Alcotest.(check bool) "lint severity round-trips" true
    (Dg.severity_of_string (Dg.severity_to_string Dg.Lint) = Some Dg.Lint)

let test_trace_illegal_message_has_step () =
  (* satellite: the dynamic oracle names step and vertex too *)
  let trace = lru_trace 16 in
  let corrupted = List.filteri (fun i _ -> i <> 4) trace in
  match
    CM.replay { CM.cache_size = 16; allow_recompute = true } w4 corrupted
  with
  | _ -> Alcotest.fail "expected Illegal"
  | exception CM.Illegal msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S names a step" msg)
      true (contains msg "step ");
    Alcotest.(check bool)
      (Printf.sprintf "message %S names a vertex" msg)
      true (contains msg "vertex ")

(* --- parallel race detector --- *)

let test_par_clean_bfs () =
  let assignment = PE.bfs_assignment cdag8 ~depth:1 ~procs:7 in
  let r = Pc.check w8 ~procs:7 ~assignment in
  Alcotest.(check int) "zero errors" 0 (Dg.n_errors r.Pc.report);
  Alcotest.(check int) "zero races" 0 r.Pc.races;
  (* word census agrees with the executing model *)
  let dyn = PE.run w8 ~procs:7 ~assignment in
  Alcotest.(check int) "words agree with Par_exec" dyn.PE.total_words
    r.Pc.total_words;
  (* ownership counts cover the graph *)
  Alcotest.(check int) "ownership partition" (W.n_vertices w8)
    (Array.fold_left ( + ) 0 r.Pc.owned)

let test_par_out_of_range () =
  let assignment = PE.bfs_assignment cdag4 ~depth:1 ~procs:7 in
  assignment.(10) <- 99;
  let r = Pc.check w4 ~procs:7 ~assignment in
  let d = find_code r.Pc.report "out-of-range" in
  Alcotest.(check bool) "located at vertex 10" true (d.Dg.loc = Dg.Vertex 10)

let test_par_unowned () =
  let assignment = PE.bfs_assignment cdag4 ~depth:1 ~procs:7 in
  assignment.(3) <- -1;
  let r = Pc.check w4 ~procs:7 ~assignment in
  let d = find_code r.Pc.report "unowned" in
  Alcotest.(check bool) "located at vertex 3" true (d.Dg.loc = Dg.Vertex 3)

let test_par_shape_mismatch () =
  let r = Pc.check w4 ~procs:2 ~assignment:[| 0; 1 |] in
  Alcotest.(check bool) "shape error" true (has_code r.Pc.report "shape")

let test_par_race_on_order_violation () =
  (* swap a cross-processor producer behind its consumer *)
  let assignment = PE.bfs_assignment cdag8 ~depth:1 ~procs:7 in
  let base =
    match D.topo_sort (Cd.graph cdag8) with
    | Some o -> List.filter (fun v -> not (W.is_input w8 v)) o
    | None -> Alcotest.fail "cycle"
  in
  let cross = ref None in
  List.iter
    (fun v ->
      if !cross = None && not (W.is_input w8 v) then
        List.iter
          (fun u ->
            if
              !cross = None
              && (not (W.is_input w8 u))
              && assignment.(u) <> assignment.(v)
            then cross := Some (u, v))
          (D.in_neighbors (Cd.graph cdag8) v))
    base;
  let u, v = Option.get !cross in
  let order =
    List.map (fun x -> if x = u then v else if x = v then u else x) base
  in
  let r = Pc.check ~order w8 ~procs:7 ~assignment in
  Alcotest.(check bool) "at least one race" true (r.Pc.races >= 1);
  let d = find_code r.Pc.report "race" in
  Alcotest.(check bool) "race located at the edge" true
    (d.Dg.loc = Dg.Edge { src = u; dst = v })

let test_par_reassignment_races_phased_order () =
  (* pipeline DAG: in -> x -> y -> out-z; processor 0 runs first, then
     processor 1 (phased order). Owners x,y on p0, z on p1: clean.
     Reassigning x cross-processor to p1 makes p0's y read x before
     p1's phase has sent it: a read-before-send race. *)
  let g = D.create () in
  let ids = D.add_vertices g 4 in
  D.add_edge g ids.(0) ids.(1);
  (* in -> x *)
  D.add_edge g ids.(1) ids.(2);
  (* x -> y *)
  D.add_edge g ids.(2) ids.(3);
  (* y -> z *)
  let w = W.make ~graph:g ~inputs:[| ids.(0) |] ~outputs:[| ids.(3) |] () in
  let assignment = [| 0; 0; 0; 1 |] in
  let order = Pc.phased_order w ~procs:2 ~assignment in
  let r = Pc.check ~order w ~procs:2 ~assignment in
  Alcotest.(check int) "pipeline clean" 0 (Dg.n_errors r.Pc.report);
  (* corrupt: reassign the producer x to the later processor *)
  let assignment' = [| 0; 1; 0; 1 |] in
  let order' = Pc.phased_order w ~procs:2 ~assignment:assignment' in
  let r' = Pc.check ~order:order' w ~procs:2 ~assignment:assignment' in
  Alcotest.(check bool) "race detected" true (r'.Pc.races >= 1);
  let d = find_code r'.Pc.report "race" in
  Alcotest.(check bool) "race on the reassigned edge" true
    (d.Dg.loc = Dg.Edge { src = ids.(1); dst = ids.(2) })

let test_par_never_scheduled () =
  let assignment = PE.bfs_assignment cdag4 ~depth:1 ~procs:7 in
  let base =
    match D.topo_sort (Cd.graph cdag4) with
    | Some o -> List.filter (fun v -> not (W.is_input w4 v)) o
    | None -> Alcotest.fail "cycle"
  in
  let dropped = List.nth base (List.length base - 1) in
  let order = List.filter (fun v -> v <> dropped) base in
  let r = Pc.check ~order w4 ~procs:7 ~assignment in
  Alcotest.(check bool) "never-scheduled reported" true
    (has_code r.Pc.report "never-scheduled")

let test_par_imbalance_warning () =
  (* all vertices on processor 0 of 4: gross imbalance, no errors *)
  let assignment = Array.make (W.n_vertices w4) 0 in
  let r = Pc.check w4 ~procs:4 ~assignment in
  Alcotest.(check bool) "imbalance warned" true
    (has_code r.Pc.report "ownership-imbalance");
  Alcotest.(check int) "no errors" 0 (Dg.n_errors r.Pc.report)

let () =
  Alcotest.run "fmm_analysis"
    [
      ( "diagnostic",
        [ Alcotest.test_case "rendering" `Quick test_report_rendering ] );
      ( "cdag_lint",
        [
          Alcotest.test_case "clean CDAGs" `Quick test_lint_clean;
          Alcotest.test_case "edge removed" `Quick test_lint_edge_removed;
          Alcotest.test_case "illegal edge" `Quick test_lint_extra_edge;
          Alcotest.test_case "workload hygiene" `Quick
            test_lint_workload_hygiene;
        ] );
      ( "trace_check",
        [
          Alcotest.test_case "clean schedulers" `Quick
            test_trace_clean_schedulers;
          Alcotest.test_case "recompute attribution" `Quick
            test_trace_recompute_attribution;
          Alcotest.test_case "missing load" `Quick test_trace_missing_load;
          Alcotest.test_case "cache overflow" `Quick test_trace_overflow;
          Alcotest.test_case "missing final store" `Quick
            test_trace_missing_final_store;
          Alcotest.test_case "output never computed" `Quick
            test_trace_output_never_computed;
          Alcotest.test_case "collects all violations" `Quick
            test_trace_collects_all_violations;
          Alcotest.test_case "dead load / redundant store" `Quick
            test_trace_warnings;
          Alcotest.test_case "Illegal names step+vertex" `Quick
            test_trace_illegal_message_has_step;
        ] );
      ( "par_check",
        [
          Alcotest.test_case "clean BFS partition" `Quick test_par_clean_bfs;
          Alcotest.test_case "out of range" `Quick test_par_out_of_range;
          Alcotest.test_case "unowned" `Quick test_par_unowned;
          Alcotest.test_case "shape mismatch" `Quick test_par_shape_mismatch;
          Alcotest.test_case "race on order violation" `Quick
            test_par_race_on_order_violation;
          Alcotest.test_case "cross-processor reassignment races" `Quick
            test_par_reassignment_races_phased_order;
          Alcotest.test_case "never scheduled" `Quick test_par_never_scheduled;
          Alcotest.test_case "ownership imbalance" `Quick
            test_par_imbalance_warning;
        ] );
    ]
