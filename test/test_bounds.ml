(* Tests for fmm_bounds: closed-form values, scaling exponents,
   crossovers, and the leading-coefficient algebra. *)

module B = Fmm_bounds.Bounds

let close ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_classical_values () =
  (* n = 64, M = 16, P = 1: (64/4)^3 * 16 = 4096 * 16 = 65536 *)
  Alcotest.(check bool) "memdep value" true
    (close (B.classical_memdep ~n:64 ~m:16 ~p:1) 65536.);
  Alcotest.(check bool) "P divides" true
    (close (B.classical_memdep ~n:64 ~m:16 ~p:4) 16384.);
  (* memind: n^2 / P^{2/3}: n=64, P=8: 4096 / 4 = 1024 *)
  Alcotest.(check bool) "memind value" true
    (close (B.classical_memind ~n:64 ~p:8) 1024.)

let test_fast_values () =
  (* omega0 = log2 7; n = 4M^{1/2} => (n/sqrt M)^w = 4^w = 7^2 = 49 *)
  Alcotest.(check bool) "memdep 49M" true
    (close (B.fast_memdep ~n:64 ~m:256 ~p:1 ()) (49. *. 256.));
  (* memind at P = 7^3: n^2 / 7^{3*2/w} = n^2 / 2^6 *)
  Alcotest.(check bool) "memind pow7" true
    (close (B.fast_memind ~n:64 ~p:343 ()) (4096. /. 64.));
  Alcotest.(check bool) "sequential = memdep at P=1" true
    (close (B.fast_sequential ~n:128 ~m:64 ()) (B.fast_memdep ~n:128 ~m:64 ~p:1 ()))

let test_scaling_exponents () =
  (* doubling n multiplies the fast memdep bound by 2^{log2 7} = 7 *)
  let r = B.fast_memdep ~n:256 ~m:64 ~p:1 () /. B.fast_memdep ~n:128 ~m:64 ~p:1 () in
  Alcotest.(check bool) "n-exponent is omega0" true (close r 7.);
  (* doubling M multiplies it by 2^{1 - w/2} = 2 / sqrt 7 *)
  let rm = B.fast_memdep ~n:256 ~m:128 ~p:1 () /. B.fast_memdep ~n:256 ~m:64 ~p:1 () in
  Alcotest.(check bool) "M-exponent" true (close rm (2. /. sqrt 7.));
  (* classical: doubling n multiplies by 8 *)
  let rc = B.classical_memdep ~n:256 ~m:64 ~p:1 /. B.classical_memdep ~n:128 ~m:64 ~p:1 in
  Alcotest.(check bool) "classical n-exponent 3" true (close rc 8.)

let test_parallel_max () =
  let n = 1024 and m = 256 in
  (* at P = 1 memory-dependent dominates; at huge P memory-independent *)
  Alcotest.(check bool) "small P: memdep wins" true
    (close (B.fast_parallel ~n ~m ~p:1 ()) (B.fast_memdep ~n ~m ~p:1 ()));
  let big_p = 1 lsl 20 in
  Alcotest.(check bool) "big P: memind wins" true
    (close (B.fast_parallel ~n ~m ~p:big_p ()) (B.fast_memind ~n ~p:big_p ()))

let test_crossover () =
  let n = 1024 and m = 256 in
  let pstar = B.crossover_p ~n ~m () in
  Alcotest.(check bool) "pstar > 1" true (pstar > 1);
  (* at pstar the memind bound is >= memdep; just below it is not *)
  Alcotest.(check bool) "at pstar" true
    (B.fast_memind ~n ~p:pstar () >= B.fast_memdep ~n ~m ~p:pstar ());
  Alcotest.(check bool) "below pstar" true
    (B.fast_memind ~n ~p:(pstar - 1) () < B.fast_memdep ~n ~m ~p:(pstar - 1) ());
  (* more memory -> memdep falls -> earlier crossover *)
  let pstar_bigm = B.crossover_p ~n ~m:(4 * m) () in
  Alcotest.(check bool) "bigger M crosses earlier" true (pstar_bigm <= pstar)

let test_crossover_boundary () =
  (* n <= sqrt M: memdep degenerates, memind dominates already at P = 1 *)
  Alcotest.(check int) "n = sqrt M crosses at P = 1" 1
    (B.crossover_p ~n:8 ~m:64 ());
  Alcotest.(check int) "n < sqrt M crosses at P = 1" 1
    (B.crossover_p ~n:4 ~m:64 ());
  (* just past the boundary the crossover moves off 1, and the P = 1
     edge of the bracket is still handled exactly *)
  let pstar = B.crossover_p ~n:64 ~m:64 () in
  Alcotest.(check bool) "n > sqrt M crosses later" true (pstar > 1);
  Alcotest.(check bool) "at pstar" true
    (B.fast_memind ~n:64 ~p:pstar () >= B.fast_memdep ~n:64 ~m:64 ~p:pstar ());
  Alcotest.(check bool) "below pstar" true
    (B.fast_memind ~n:64 ~p:(pstar - 1) ()
    < B.fast_memdep ~n:64 ~m:64 ~p:(pstar - 1) ());
  (* the search is total: huge n still terminates (the bracket grows
     geometrically instead of scanning) *)
  Alcotest.(check bool) "huge n terminates" true
    (B.crossover_p ~n:(1 lsl 20) ~m:64 () > 1)

let test_crossover_never () =
  (* omega0 < 2 makes the memind/memdep ratio non-increasing in P: if
     P = 1 does not cross (n < sqrt M), nothing ever does — a
     documented error, not an infinite loop *)
  Alcotest.check_raises "omega0 < 2, n < sqrt M never crosses"
    (Invalid_argument
       "Bounds.crossover_p: memory-independent bound never overtakes the \
        memory-dependent one (omega0 = 1.9, n = 4, M = 64)")
    (fun () -> ignore (B.crossover_p ~omega0:1.9 ~n:4 ~m:64 ()));
  (* omega0 = 2 is the degenerate equality: both bounds are n^2/P, so
     the crossover is (weakly) satisfied already at P = 1 *)
  Alcotest.(check int) "omega0 = 2 ties at P = 1" 1
    (B.crossover_p ~omega0:2.0 ~n:1024 ~m:16 ())

let test_rectangular () =
  (* q = 11, t = 3, base <2,2,3>: m0*p0 = 6 => exponent log_6 11 - 1 *)
  let v = B.rectangular ~m0:2 ~p0:3 ~q:11 ~t:3 ~m:64 ~p:2 in
  let expected =
    (11. ** 3.) /. (2. *. (64. ** ((log 11. /. log 6.) -. 1.)))
  in
  Alcotest.(check bool) "rectangular formula" true (close v expected)

(* The residual float paths in the fast bounds, pinned at 2^20-scale
   power-of-two boundaries where `**` used to round: these are
   equalities, not tolerance checks. *)
let test_exact_fast_pins () =
  (* fast_memdep: (n / sqrt M)^{log2 7} M = 7^10 * 2^20 exactly at
     n = M = 2^20 (the float route lost the low bits of the 49-bit
     product) *)
  Alcotest.(check (float 0.)) "fast_memdep n=M=2^20"
    (float_of_int (Fmm_util.Combinat.pow_int 7 10 * (1 lsl 20)))
    (B.fast_memdep ~n:(1 lsl 20) ~m:(1 lsl 20) ~p:1 ());
  Alcotest.(check (float 0.)) "fast_memdep n=M=2^20 P=7"
    (float_of_int (Fmm_util.Combinat.pow_int 7 10 * (1 lsl 20)) /. 7.)
    (B.fast_memdep ~n:(1 lsl 20) ~m:(1 lsl 20) ~p:7 ());
  (* fast_memind: n^2 / P^{2/log2 7} = 2^40 / 2^6 at P = 7^3 (the
     p ** (2/omega0) exponent is now decided on the integer path) *)
  Alcotest.(check (float 0.)) "fast_memind n=2^20 P=7^3"
    (float_of_int (1 lsl 34))
    (B.fast_memind ~n:(1 lsl 20) ~p:343 ());
  Alcotest.(check (float 0.)) "fast_memind n=2^20 P=7^6"
    (float_of_int (1 lsl 28))
    (B.fast_memind ~n:(1 lsl 20) ~p:117649 ());
  (* omega0 = 3 delegates to the exact classical path *)
  Alcotest.(check (float 0.)) "fast_memind omega0=3 = classical"
    (B.classical_memind ~n:(1 lsl 20) ~p:27)
    (B.fast_memind ~omega0:3. ~n:(1 lsl 20) ~p:27 ());
  (* rectangular: q^t / M^{log_{m0 p0} q - 1} = 2^15 / 2^10 at
     q = 8, m0 p0 = 4, M = 2^20 (the log-ratio exponent is exact) *)
  Alcotest.(check (float 0.)) "rectangular 2^20 pin" 32.
    (B.rectangular ~m0:2 ~p0:2 ~q:8 ~t:5 ~m:(1 lsl 20) ~p:1);
  Alcotest.(check (float 0.)) "rectangular 2^20 pin P=2" 16.
    (B.rectangular ~m0:2 ~p0:2 ~q:8 ~t:5 ~m:(1 lsl 20) ~p:2)

let test_fft () =
  (* n log n / (P log M): n = 1024, M = 32, P = 1 -> 1024*10/5 = 2048 *)
  Alcotest.(check bool) "fft memdep" true (close (B.fft_memdep ~n:1024 ~m:32 ~p:1) 2048.);
  (* memind: n=1024, P=4: 1024*10/(4*8) = 320 *)
  Alcotest.(check bool) "fft memind" true (close (B.fft_memind ~n:1024 ~p:4) 320.);
  Alcotest.(check bool) "fft n<=P degenerate" true (close (B.fft_memind ~n:4 ~p:4) 0.)

let test_exact_crossover () =
  (* M = s^2 -> P* = (n/s)^3 exactly; floats used to mis-rank the two
     sides once n^6 left the 53-bit mantissa *)
  Alcotest.(check int) "n=16 M=16" 64 (B.classical_crossover_p ~n:16 ~m:16);
  Alcotest.(check int) "omega0=3 delegates" 64
    (B.crossover_p ~omega0:3. ~n:16 ~m:16 ());
  Alcotest.(check int) "n=2^20 M=2^20" (1 lsl 30)
    (B.classical_crossover_p ~n:(1 lsl 20) ~m:(1 lsl 20));
  Alcotest.(check int) "n=2^20 M=2^20 via crossover_p" (1 lsl 30)
    (B.crossover_p ~omega0:3. ~n:(1 lsl 20) ~m:(1 lsl 20) ());
  (* boundary: P* is non-increasing in M around a perfect square *)
  let p_at m = B.classical_crossover_p ~n:64 ~m in
  Alcotest.(check bool) "monotone at s^2 - 1" true (p_at 255 >= p_at 256);
  Alcotest.(check bool) "monotone at s^2 + 1" true (p_at 256 >= p_at 257);
  Alcotest.(check int) "exact at s^2" 4096 (p_at 16);
  (* already crossed at P = 1 when n <= sqrt M *)
  Alcotest.(check int) "degenerate" 1 (B.classical_crossover_p ~n:8 ~m:64)

(* --- the hybrid (cutoff-parameterized) bounds --- *)

(* The n0-limit identities are float-EXACT (structural delegation, not
   formula re-evaluation): cutoff = n reproduces the classical bounds
   verbatim and cutoff = 1 the fast bounds verbatim. *)
let test_hybrid_endpoint_identities () =
  List.iter
    (fun (n, m, p) ->
      let tag = Printf.sprintf "n=%d M=%d P=%d" n m p in
      Alcotest.(check (float 0.))
        (tag ^ " memdep cutoff=n = classical")
        (B.classical_memdep ~n ~m ~p)
        (B.hybrid_memdep ~n ~m ~p ~cutoff:n ());
      Alcotest.(check (float 0.))
        (tag ^ " memdep cutoff=1 = fast")
        (B.fast_memdep ~n ~m ~p ())
        (B.hybrid_memdep ~n ~m ~p ~cutoff:1 ());
      Alcotest.(check (float 0.))
        (tag ^ " memind cutoff=n = classical")
        (B.classical_memind ~n ~p)
        (B.hybrid_memind ~n ~p ~cutoff:n ());
      Alcotest.(check (float 0.))
        (tag ^ " memind cutoff=1 = fast")
        (B.fast_memind ~n ~p ())
        (B.hybrid_memind ~n ~p ~cutoff:1 ()))
    [
      (64, 64, 1);
      (64, 256, 7);
      (256, 64, 27);
      (1024, 4096, 343);
      (1 lsl 20, 1 lsl 20, 49);
    ]

let test_hybrid_interpolates () =
  (* strictly between the endpoints the memdep bound is sandwiched:
     classical <= hybrid, and hybrid(n0) is non-increasing as the
     cutoff falls toward the fast regime once n0 > sqrt M *)
  let n = 1024 and m = 256 and p = 1 in
  let at cutoff = B.hybrid_memdep ~n ~m ~p ~cutoff () in
  Alcotest.(check bool) "n0 <= sqrt M collapses to fast" true
    (at 16 = B.fast_memdep ~n ~m ~p ());
  Alcotest.(check bool) "n0 = 32 above fast" true
    (at 32 >= B.fast_memdep ~n ~m ~p ());
  Alcotest.(check bool) "monotone 32 <= 64" true (at 32 <= at 64);
  Alcotest.(check bool) "monotone 64 <= 128" true (at 64 <= at 128);
  Alcotest.(check bool) "hybrid <= classical at every n0 > sqrt M" true
    (List.for_all (fun c -> at c <= B.classical_memdep ~n ~m ~p) [ 32; 64; 128 ])

let test_hybrid_crossover () =
  (* endpoint delegation is exact *)
  Alcotest.(check int) "cutoff=1 = crossover_p"
    (B.crossover_p ~n:1024 ~m:256 ())
    (B.hybrid_crossover_p ~n:1024 ~m:256 ~cutoff:1 ());
  Alcotest.(check int) "cutoff=n = classical_crossover_p"
    (B.classical_crossover_p ~n:1024 ~m:256)
    (B.hybrid_crossover_p ~n:1024 ~m:256 ~cutoff:1024 ());
  (* interior: P* really is the crossing point *)
  let n = 1024 and m = 256 and cutoff = 64 in
  let pstar = B.hybrid_crossover_p ~n ~m ~cutoff () in
  Alcotest.(check bool) "at pstar" true
    (B.hybrid_memind ~n ~p:pstar ~cutoff ()
    >= B.hybrid_memdep ~n ~m ~p:pstar ~cutoff ());
  Alcotest.(check bool) "below pstar" true
    (pstar = 1
    || B.hybrid_memind ~n ~p:(pstar - 1) ~cutoff ()
       < B.hybrid_memdep ~n ~m ~p:(pstar - 1) ~cutoff ())

let test_hybrid_edge_raises () =
  (* the no-crossover contract at the hybrid edge carries the cutoff in
     its diagnostic. In the interior the classical-leaf memind term
     decays only as P^{-2/3}, so a crossing always exists
     mathematically — the total-search contract fires when the bracket
     would pass 2^60, here with (n/n0)^{omega0} ~ 7^23 leaves against
     M = 4. *)
  Alcotest.check_raises "bracket past 2^60 raises, names the cutoff"
    (Invalid_argument
       (Printf.sprintf
          "Bounds.hybrid_crossover_p: memory-independent bound never \
           overtakes the memory-dependent one (omega0 = %g, n = %d, M = %d, \
           cutoff = %d)"
          (log 7. /. log 2.) (1 lsl 25) 4 4))
    (fun () -> ignore (B.hybrid_crossover_p ~n:(1 lsl 25) ~m:4 ~cutoff:4 ()));
  (* and the cutoff-range contract on all three entry points *)
  List.iter
    (fun (fn, f) ->
      Alcotest.check_raises (fn ^ " cutoff=0")
        (Invalid_argument
           (Printf.sprintf "Bounds.%s: cutoff must satisfy 1 <= cutoff <= n" fn))
        (fun () -> ignore (f 0));
      Alcotest.check_raises (fn ^ " cutoff>n")
        (Invalid_argument
           (Printf.sprintf "Bounds.%s: cutoff must satisfy 1 <= cutoff <= n" fn))
        (fun () -> ignore (f 128)))
    [
      ("hybrid_memdep", fun c -> B.hybrid_memdep ~n:64 ~m:16 ~p:1 ~cutoff:c ());
      ("hybrid_memind", fun c -> B.hybrid_memind ~n:64 ~p:1 ~cutoff:c ());
      ( "hybrid_crossover_p",
        fun c -> float_of_int (B.hybrid_crossover_p ~n:64 ~m:16 ~cutoff:c ()) );
    ]

let test_exact_memind () =
  (* perfect-cube P takes the integer-root path: 27^{2/3} = 9 exactly *)
  Alcotest.(check (float 0.)) "p=27" (4096. /. 9.)
    (B.classical_memind ~n:64 ~p:27);
  Alcotest.(check (float 0.)) "p=8" 1024. (B.classical_memind ~n:64 ~p:8);
  Alcotest.(check (float 0.)) "p=1" 4096. (B.classical_memind ~n:64 ~p:1)

let test_exact_fft () =
  (* powers of two take the exact-log path: these are equalities, not
     tolerance checks *)
  Alcotest.(check (float 0.)) "memdep" 2048. (B.fft_memdep ~n:1024 ~m:32 ~p:1);
  Alcotest.(check (float 0.)) "memind" 320. (B.fft_memind ~n:1024 ~p:4);
  Alcotest.(check (float 0.)) "memdep p=2" 1024.
    (B.fft_memdep ~n:1024 ~m:32 ~p:2)

let test_param_validation () =
  Alcotest.check_raises "bad n" (Invalid_argument "Bounds: n must be positive")
    (fun () -> ignore (B.classical_memdep ~n:0 ~m:4 ~p:1));
  Alcotest.check_raises "bad M" (Invalid_argument "Bounds: M must be positive")
    (fun () -> ignore (B.fast_memdep ~n:4 ~m:0 ~p:1 ()));
  Alcotest.check_raises "bad P" (Invalid_argument "Bounds: P must be positive")
    (fun () -> ignore (B.fast_memind ~n:4 ~p:0 ()))

let test_table_rows () =
  Alcotest.(check int) "four rows" 4 (List.length B.table1_rows);
  List.iter
    (fun row ->
      let v = row.B.memdep ~n:64 ~m:16 ~p:2 in
      Alcotest.(check bool) (row.B.algorithm ^ " positive") true (v > 0.);
      let vi = row.B.memind ~n:64 ~p:8 in
      Alcotest.(check bool) (row.B.algorithm ^ " memind positive") true (vi > 0.))
    B.table1_rows;
  Alcotest.(check string) "status strings" "not relevant"
    (B.recomputation_status_string B.Not_relevant)

let test_leading_coefficients () =
  (* closed form matches the paper's 7/6/5 story: Strassen s=18 -> 7,
     Winograd-with-reuse s=15 -> 6, KS s=12 -> 5. *)
  Alcotest.(check bool) "strassen 7" true
    (close (B.leading_coefficient_of_adds ~adds_per_step:18) 7.);
  Alcotest.(check bool) "winograd 6" true
    (close (B.leading_coefficient_of_adds ~adds_per_step:15) 6.);
  Alcotest.(check bool) "ks 5" true
    (close (B.leading_coefficient_of_adds ~adds_per_step:12) 5.);
  Alcotest.(check int) "io coefficient data" 2
    (List.length B.io_leading_coefficients)

let () =
  Alcotest.run "fmm_bounds"
    [
      ( "formulas",
        [
          Alcotest.test_case "classical" `Quick test_classical_values;
          Alcotest.test_case "fast" `Quick test_fast_values;
          Alcotest.test_case "scaling exponents" `Quick test_scaling_exponents;
          Alcotest.test_case "parallel max" `Quick test_parallel_max;
          Alcotest.test_case "crossover" `Quick test_crossover;
          Alcotest.test_case "crossover boundary" `Quick test_crossover_boundary;
          Alcotest.test_case "crossover never" `Quick test_crossover_never;
          Alcotest.test_case "exact crossover" `Quick test_exact_crossover;
          Alcotest.test_case "exact memind" `Quick test_exact_memind;
          Alcotest.test_case "exact fft" `Quick test_exact_fft;
          Alcotest.test_case "exact fast pins (2^20)" `Quick
            test_exact_fast_pins;
          Alcotest.test_case "rectangular" `Quick test_rectangular;
          Alcotest.test_case "fft" `Quick test_fft;
          Alcotest.test_case "validation" `Quick test_param_validation;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "endpoint identities exact" `Quick
            test_hybrid_endpoint_identities;
          Alcotest.test_case "interpolation" `Quick test_hybrid_interpolates;
          Alcotest.test_case "crossover" `Quick test_hybrid_crossover;
          Alcotest.test_case "edge raises" `Quick test_hybrid_edge_raises;
        ] );
      ( "table",
        [
          Alcotest.test_case "rows" `Quick test_table_rows;
          Alcotest.test_case "leading coefficients" `Quick test_leading_coefficients;
        ] );
    ]
