(* Tests for fmm_fault (crash injection + recovery) and the Pool retry
   layer that backs it. The load-bearing invariants:

   - zero failures is the plain executor: every policy reproduces
     Par_exec.run's per-processor census EXACTLY (and run_limited with
     unbounded memory agrees — the fault path must not perturb the
     fault-free one);
   - every recovered run is a valid execution: the replay checker
     (Par_check.check_log) finds no read-before-send violation and no
     lost output, for every policy and failure load;
   - determinism: the failure schedule and the whole report are pure
     functions of the seed — byte-for-byte reproducible;
   - Pool.map ~retries re-runs Transient crashes a bounded number of
     times and keeps the first-index re-raise contract. *)

module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module W = Fmm_machine.Workload
module PE = Fmm_machine.Par_exec
module Sim = Fmm_fault.Sim
module Dg = Fmm_analysis.Diagnostic
module Pc = Fmm_analysis.Par_check
module Pool = Fmm_par.Pool
module G = Fmm_sched.Generator

let cdag16 = Cd.build S.strassen ~n:16
let w16 = W.of_cdag cdag16

let setup ~depth ~procs =
  let assignment = PE.bfs_assignment cdag16 ~depth ~procs in
  (w16, assignment)

let steps_of w =
  W.n_vertices w - Array.length w.W.inputs

let all_policies = [ Sim.Recompute_local; Sim.Refetch_owner; Sim.Replicate 2 ]

(* --- fault-free parity --- *)

let test_zero_failures_parity () =
  (* acceptance gate: fail = 0 reproduces run AND run_limited(max_int)
     counters exactly, per processor, on BFS Strassen n=16 depth 2 *)
  let procs = 49 in
  let w, assignment = setup ~depth:2 ~procs in
  let base = PE.run w ~procs ~assignment in
  let lim = PE.run_limited w ~procs ~assignment ~local_memory:max_int in
  List.iter
    (fun policy ->
      let r = Sim.simulate w ~procs ~assignment ~policy ~fail:0 ~seed:1 () in
      let name = Sim.policy_name policy in
      Alcotest.(check (array int)) (name ^ " sent = run") base.PE.sent r.Sim.sent;
      Alcotest.(check (array int))
        (name ^ " received = run") base.PE.received r.Sim.received;
      Alcotest.(check int) (name ^ " total = run") base.PE.total_words r.Sim.total_words;
      Alcotest.(check int)
        (name ^ " total = run_limited") lim.PE.total_words r.Sim.total_words;
      Alcotest.(check int) (name ^ " max = run") base.PE.max_words r.Sim.max_words;
      Alcotest.(check int) (name ^ " no recovery traffic") 0 r.Sim.recovery_words;
      Alcotest.(check int) (name ^ " nothing recomputed") 0 r.Sim.recomputed;
      Alcotest.(check (float 0.)) (name ^ " overhead 1.0") 1.0 r.Sim.overhead_total)
    [ Sim.Recompute_local; Sim.Refetch_owner; Sim.Replicate 1 ]

let test_replicate_pays_up_front () =
  (* Replicate k > 1 pushes each computed word to k-1 replicas even on
     a fault-free run: exactly (k-1) * steps replication words on top
     of the baseline *)
  let procs = 7 in
  let w, assignment = setup ~depth:1 ~procs in
  let base = PE.run w ~procs ~assignment in
  let steps = steps_of w in
  List.iter
    (fun k ->
      let r =
        Sim.simulate w ~procs ~assignment ~policy:(Sim.Replicate k) ~fail:0
          ~seed:1 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "k=%d replication words" k)
        ((k - 1) * steps) r.Sim.replication_words;
      (* replicas already hold the pushed copies, so replication can
         only SAVE ordinary fetches: the non-replication residue is at
         most the fault-free census (equal when k = 1) *)
      let ordinary = r.Sim.total_words - r.Sim.replication_words in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d ordinary traffic <= fault-free" k)
        true
        (ordinary <= base.PE.total_words);
      if k = 1 then
        Alcotest.(check int) "k=1 is plain ownership" base.PE.total_words
          r.Sim.total_words)
    [ 1; 2; 3 ]

(* --- recovered runs are valid executions --- *)

let valid_replay name w r =
  let replay = Sim.check w r in
  Alcotest.(check int) (name ^ " replay errors") 0 (Dg.n_errors replay.Pc.report);
  Alcotest.(check int) (name ^ " lost outputs") 0 replay.Pc.lost_outputs;
  replay

let test_recovered_runs_valid () =
  let procs = 7 in
  let w, assignment = setup ~depth:1 ~procs in
  List.iter
    (fun policy ->
      List.iter
        (fun fail ->
          let name = Printf.sprintf "%s fail=%d" (Sim.policy_name policy) fail in
          let r = Sim.simulate w ~procs ~assignment ~policy ~fail ~seed:7 () in
          let replay = valid_replay name w r in
          Alcotest.(check int)
            (name ^ " crash count replayed") fail replay.Pc.crashes;
          (* recovery never undercuts the fault-free run: the fault-free
             transfers all still happen (possibly more than once) *)
          Alcotest.(check bool)
            (name ^ " overhead >= 1") true
            (r.Sim.overhead_total >= 1.0))
        [ 1; 2; 5; 9 ])
    all_policies

let test_deep_partition_valid () =
  (* depth-2 partition (49 processors), heavier failure load *)
  let procs = 49 in
  let w, assignment = setup ~depth:2 ~procs in
  List.iter
    (fun policy ->
      let name = Sim.policy_name policy ^ " depth2" in
      let r = Sim.simulate w ~procs ~assignment ~policy ~fail:12 ~seed:13 () in
      ignore (valid_replay name w r))
    all_policies

let test_generated_assignments_valid () =
  (* the recovery machinery (in particular Refetch_owner's ascending
     smallest-id surviving-holder scan) must stay deterministic and
     replay-clean on generated assignments — contiguous order splits
     and (p1, p2, p3) grids — whose ownership is neither BFS-shaped nor
     contiguous in vertex id *)
  let split =
    G.split_order w16 ~procs:7
      (Array.of_list (Fmm_machine.Orders.recursive_dfs cdag16))
  in
  let classical = Cd.build S.strassen ~n:8 ~cutoff:8 in
  let wc = W.of_cdag classical in
  let _, _, _, grid_asg = G.grid_search classical ~procs:8 in
  List.iter
    (fun (tag, w, procs, assignment) ->
      List.iter
        (fun policy ->
          List.iter
            (fun fail ->
              let name =
                Printf.sprintf "%s %s fail=%d" tag (Sim.policy_name policy)
                  fail
              in
              let r =
                Sim.simulate w ~procs ~assignment ~policy ~fail ~seed:11 ()
              in
              ignore (valid_replay name w r);
              (* byte-identical repeat: the whole report is a pure
                 function of (workload, assignment, policy, fail, seed) *)
              let r2 =
                Sim.simulate w ~procs ~assignment ~policy ~fail ~seed:11 ()
              in
              Alcotest.(check bool) (name ^ " deterministic") true (r = r2))
            [ 1; 2; 4 ])
        all_policies)
    [
      ("split", w16, 7, split.G.assignment);
      ("grid", wc, 8, grid_asg);
    ]

let test_bound_ratio () =
  let procs = 7 in
  let w, assignment = setup ~depth:1 ~procs in
  let bound = 100.0 in
  let r =
    Sim.simulate w ~procs ~assignment ~policy:Sim.Recompute_local ~fail:2
      ~seed:5 ~bound ()
  in
  (match r.Sim.bound_ratio with
  | None -> Alcotest.fail "bound_ratio missing"
  | Some x ->
    Alcotest.(check (float 1e-9)) "ratio" (float_of_int r.Sim.max_words /. bound) x);
  let r0 =
    Sim.simulate w ~procs ~assignment ~policy:Sim.Recompute_local ~fail:2
      ~seed:5 ()
  in
  Alcotest.(check bool) "no bound, no ratio" true (r0.Sim.bound_ratio = None)

(* --- determinism --- *)

let test_schedule_deterministic () =
  let a = Sim.derive_failures ~procs:7 ~steps:500 ~fail:6 ~seed:42 in
  let b = Sim.derive_failures ~procs:7 ~steps:500 ~fail:6 ~seed:42 in
  Alcotest.(check bool) "same schedule" true (a = b);
  Alcotest.(check int) "six events" 6 (List.length a);
  List.iter
    (fun e ->
      Alcotest.(check bool) "proc in range" true (e.Sim.proc >= 0 && e.Sim.proc < 7);
      Alcotest.(check bool) "step in range" true (e.Sim.step >= 0 && e.Sim.step < 500))
    a;
  let sorted = List.sort (fun x y -> compare (x.Sim.step, x.Sim.proc) (y.Sim.step, y.Sim.proc)) a in
  Alcotest.(check bool) "sorted by (step, proc)" true (a = sorted);
  (* per-index independent streams: growing the failure count never
     perturbs the events already drawn *)
  let small = Sim.derive_failures ~procs:7 ~steps:500 ~fail:3 ~seed:42 in
  List.iter
    (fun e -> Alcotest.(check bool) "fail=3 subset of fail=6" true (List.mem e a))
    small;
  Alcotest.(check (list reject)) "empty on zero steps" []
    (Sim.derive_failures ~procs:7 ~steps:0 ~fail:4 ~seed:1)

let test_report_deterministic () =
  let procs = 7 in
  let w, assignment = setup ~depth:1 ~procs in
  List.iter
    (fun policy ->
      let r () = Sim.simulate w ~procs ~assignment ~policy ~fail:4 ~seed:99 () in
      Alcotest.(check bool)
        (Sim.policy_name policy ^ " structurally equal") true
        (r () = r ()))
    all_policies

(* --- validation --- *)

let test_validation () =
  let procs = 7 in
  let w, assignment = setup ~depth:1 ~procs in
  let steps = steps_of w in
  Alcotest.check_raises "replicate 0"
    (Invalid_argument "Fault.run: Replicate k outside [1, procs]") (fun () ->
      ignore
        (Sim.run w ~procs ~assignment ~policy:(Sim.Replicate 0) ~failures:[] ()));
  Alcotest.check_raises "replicate > procs"
    (Invalid_argument "Fault.run: Replicate k outside [1, procs]") (fun () ->
      ignore
        (Sim.run w ~procs ~assignment ~policy:(Sim.Replicate 8) ~failures:[] ()));
  Alcotest.check_raises "failure proc out of range"
    (Invalid_argument "Fault.run: failure names an invalid processor")
    (fun () ->
      ignore
        (Sim.run w ~procs ~assignment ~policy:Sim.Recompute_local
           ~failures:[ { Sim.proc = 7; step = 0 } ] ()));
  Alcotest.check_raises "failure step out of range"
    (Invalid_argument "Fault.run: failure step outside the sweep") (fun () ->
      ignore
        (Sim.run w ~procs ~assignment ~policy:Sim.Recompute_local
           ~failures:[ { Sim.proc = 0; step = steps } ] ()));
  Alcotest.check_raises "bad assignment"
    (Invalid_argument "Fault.run: assignment length mismatch") (fun () ->
      ignore
        (Sim.run w ~procs ~assignment:[| 0 |] ~policy:Sim.Recompute_local
           ~failures:[] ()))

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Sim.policy_name p ^ " round-trips") true
        (Sim.policy_of_string (Sim.policy_name p) = Some p))
    [ Sim.Recompute_local; Sim.Refetch_owner; Sim.Replicate 2; Sim.Replicate 7 ];
  Alcotest.(check bool) "colon form" true
    (Sim.policy_of_string "replicate:3" = Some (Sim.Replicate 3));
  Alcotest.(check bool) "unknown rejected" true (Sim.policy_of_string "rollback" = None);
  Alcotest.(check bool) "bare replicate rejected" true
    (Sim.policy_of_string "replicate-" = None)

(* --- Pool retry semantics --- *)

let test_pool_retry_success_after_transient () =
  (* each task crashes (attempts-1) times then succeeds; with enough
     retries the map is observationally a List.map *)
  List.iter
    (fun jobs ->
      let tries = Hashtbl.create 8 in
      let f x =
        let k = try Hashtbl.find tries x with Not_found -> 0 in
        Hashtbl.replace tries x (k + 1);
        if k < 2 then raise (Pool.Transient "flaky") else x * 10
      in
      (* jobs=1 keeps the counting deterministic; at jobs>1 each task's
         counter is still touched by one domain at a time because tasks
         are claimed exactly once *)
      Alcotest.(check (list int))
        (Printf.sprintf "retries=2 recovers (jobs=%d)" jobs)
        [ 10; 20; 30 ]
        (Pool.map ~retries:2 ~jobs f [ 1; 2; 3 ]);
      Hashtbl.iter
        (fun _ k -> Alcotest.(check int) "three attempts" 3 k)
        tries)
    [ 1; 3 ]

let test_pool_retry_exhausted () =
  (* a task that stays Transient re-raises after 1 + retries attempts,
     and the first-index contract still holds *)
  let attempts = ref 0 in
  let f x =
    if x = 2 then begin
      incr attempts;
      raise (Pool.Transient "always down")
    end
    else x
  in
  Alcotest.check_raises "re-raised after retries" (Pool.Transient "always down")
    (fun () -> ignore (Pool.map ~retries:3 ~jobs:1 f [ 1; 2; 3 ]));
  Alcotest.(check int) "1 + 3 attempts" 4 !attempts

let test_pool_retry_first_index () =
  let f x = if x mod 2 = 0 then raise (Pool.Transient (string_of_int x)) else x in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "first failing index at jobs=%d" jobs)
        (Pool.Transient "2")
        (fun () -> ignore (Pool.map ~retries:1 ~jobs f [ 1; 3; 2; 5; 4 ])))
    [ 1; 4 ]

let test_pool_retry_ignores_other_exceptions () =
  (* only Transient is retried: a plain failure propagates immediately *)
  let attempts = ref 0 in
  let f _ =
    incr attempts;
    failwith "hard"
  in
  Alcotest.check_raises "hard failure not retried" (Failure "hard") (fun () ->
      ignore (Pool.map ~retries:5 ~jobs:1 f [ 0 ]));
  Alcotest.(check int) "single attempt" 1 !attempts

let test_pool_retry_validation () =
  Alcotest.check_raises "retries < 0"
    (Invalid_argument "Fmm_par.Pool.map: retries < 0") (fun () ->
      ignore (Pool.map ~retries:(-1) ~jobs:1 (fun x -> x) [ 1 ]))

let () =
  Alcotest.run "fmm_fault"
    [
      ( "parity",
        [
          Alcotest.test_case "zero failures = Par_exec" `Quick
            test_zero_failures_parity;
          Alcotest.test_case "replication up front" `Quick
            test_replicate_pays_up_front;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recovered runs valid" `Quick
            test_recovered_runs_valid;
          Alcotest.test_case "depth-2 partition" `Quick test_deep_partition_valid;
          Alcotest.test_case "generated assignments" `Quick
            test_generated_assignments_valid;
          Alcotest.test_case "bound ratio" `Quick test_bound_ratio;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "failure schedule" `Quick test_schedule_deterministic;
          Alcotest.test_case "full report" `Quick test_report_deterministic;
        ] );
      ( "validation",
        [
          Alcotest.test_case "argument checks" `Quick test_validation;
          Alcotest.test_case "policy names" `Quick test_policy_names;
        ] );
      ( "pool-retry",
        [
          Alcotest.test_case "recovers after transients" `Quick
            test_pool_retry_success_after_transient;
          Alcotest.test_case "exhausts and re-raises" `Quick
            test_pool_retry_exhausted;
          Alcotest.test_case "first index" `Quick test_pool_retry_first_index;
          Alcotest.test_case "hard failures propagate" `Quick
            test_pool_retry_ignores_other_exceptions;
          Alcotest.test_case "validation" `Quick test_pool_retry_validation;
        ] );
    ]
