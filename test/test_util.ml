(* Tests for fmm_util: combinatorics, table rendering, PRNG. *)

module C = Fmm_util.Combinat
module T = Fmm_util.Table
module P = Fmm_util.Prng

let test_subsets_of_size () =
  Alcotest.(check int) "C(7,3) count" 35 (List.length (C.subsets_of_size 7 3));
  Alcotest.(check (list (list int))) "4 choose 2"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]
    (C.subsets_of_size 4 2);
  Alcotest.(check (list (list int))) "k=0" [ [] ] (C.subsets_of_size 5 0);
  Alcotest.(check (list (list int))) "k>n" [] (C.subsets_of_size 3 4);
  Alcotest.(check (list (list int))) "k<0" [] (C.subsets_of_size 3 (-1))

let test_all_subsets () =
  Alcotest.(check int) "2^7" 128 (List.length (C.all_subsets 7));
  Alcotest.(check int) "nonempty" 127 (List.length (C.nonempty_subsets 7));
  Alcotest.(check (list (list int))) "n=0" [ [] ] (C.all_subsets 0);
  (* every subset distinct *)
  let subs = C.all_subsets 6 in
  Alcotest.(check int) "distinct" (List.length subs)
    (List.length (List.sort_uniq compare subs));
  Alcotest.check_raises "too large"
    (Invalid_argument "Combinat.all_subsets: n out of range") (fun () ->
      ignore (C.all_subsets 21))

let test_binomial () =
  Alcotest.(check int) "C(0,0)" 1 (C.binomial 0 0);
  Alcotest.(check int) "C(7,3)" 35 (C.binomial 7 3);
  Alcotest.(check int) "C(10,10)" 1 (C.binomial 10 10);
  Alcotest.(check int) "C(5,7)" 0 (C.binomial 5 7);
  (* Pascal identity on a grid *)
  for n = 1 to 12 do
    for k = 1 to n - 1 do
      Alcotest.(check int)
        (Printf.sprintf "pascal %d %d" n k)
        (C.binomial (n - 1) (k - 1) + C.binomial (n - 1) k)
        (C.binomial n k)
    done
  done

let test_pow_and_logs () =
  Alcotest.(check int) "2^10" 1024 (C.pow_int 2 10);
  Alcotest.(check int) "7^3" 343 (C.pow_int 7 3);
  Alcotest.(check int) "x^0" 1 (C.pow_int 99 0);
  Alcotest.(check bool) "pow2 64" true (C.is_power_of ~base:2 64);
  Alcotest.(check bool) "not pow2 65" false (C.is_power_of ~base:2 65);
  Alcotest.(check bool) "pow7 49" true (C.is_power_of ~base:7 49);
  Alcotest.(check int) "next pow2 33 -> 64" 64 (C.next_power_of ~base:2 33);
  Alcotest.(check int) "next pow2 32 -> 32" 32 (C.next_power_of ~base:2 32);
  Alcotest.(check int) "log2 1024" 10 (C.log2_exact 1024);
  Alcotest.check_raises "log2 non-power"
    (Invalid_argument "Combinat.log2_exact: not a power of two") (fun () ->
      ignore (C.log2_exact 48))

let test_iroot () =
  Alcotest.(check int) "cbrt 27" 3 (C.iroot ~k:3 27);
  Alcotest.(check int) "cbrt 26" 2 (C.iroot ~k:3 26);
  Alcotest.(check int) "cbrt 28" 3 (C.iroot ~k:3 28);
  Alcotest.(check int) "sqrt 0" 0 (C.iroot ~k:2 0);
  Alcotest.(check int) "sqrt 1" 1 (C.iroot ~k:2 1);
  Alcotest.(check int) "sqrt 2" 1 (C.iroot ~k:2 2);
  Alcotest.(check int) "k=1 identity" 5 (C.iroot ~k:1 5);
  (* the float path this replaced mis-rounds past 2^53: float (s^2 - 1)
     rounds up to s^2, so sqrt-and-round calls s^2 - 1 a perfect
     square. The exact root must not. *)
  let s = (1 lsl 31) - 1 in
  Alcotest.(check int) "huge square" s (C.iroot ~k:2 (s * s));
  Alcotest.(check int) "huge square - 1" (s - 1) (C.iroot ~k:2 ((s * s) - 1));
  Alcotest.(check bool) "huge square exact" true
    (C.iroot_exact ~k:2 (s * s) = Some s);
  Alcotest.(check bool) "huge near-square rejected" true
    (C.iroot_exact ~k:2 ((s * s) - 1) = None);
  let c = 1 lsl 20 in
  Alcotest.(check int) "2^60 cube root" c (C.iroot ~k:3 (c * c * c));
  Alcotest.(check int) "2^60 - 1 cube root" (c - 1) (C.iroot ~k:3 ((c * c * c) - 1));
  Alcotest.(check bool) "2^60 - 1 not a cube" true
    (C.iroot_exact ~k:3 ((c * c * c) - 1) = None);
  (* k larger than any power that fits: root collapses to 1 *)
  Alcotest.(check int) "62nd root of max_int" 1 (C.iroot ~k:62 max_int);
  Alcotest.(check bool) "boundary exacts" true
    (C.iroot_exact ~k:2 16 = Some 4
    && C.iroot_exact ~k:2 15 = None
    && C.iroot_exact ~k:2 17 = None
    && C.iroot_exact ~k:3 27 = Some 3
    && C.iroot_exact ~k:3 26 = None
    && C.iroot_exact ~k:3 28 = None);
  Alcotest.check_raises "k = 0" (Invalid_argument "Combinat.iroot: k < 1")
    (fun () -> ignore (C.iroot ~k:0 4));
  Alcotest.check_raises "negative n" (Invalid_argument "Combinat.iroot: n < 0")
    (fun () -> ignore (C.iroot ~k:2 (-1)))

let test_ceil_div () =
  Alcotest.(check int) "7/2" 4 (C.ceil_div 7 2);
  Alcotest.(check int) "8/2" 4 (C.ceil_div 8 2);
  Alcotest.(check int) "0/5" 0 (C.ceil_div 0 5);
  Alcotest.(check int) "1/5" 1 (C.ceil_div 1 5)

let test_cartesian () =
  Alcotest.(check int) "sizes multiply" 12
    (List.length (C.cartesian [ [ 1; 2 ]; [ 1; 2; 3 ]; [ 1; 2 ] ]));
  Alcotest.(check (list (list int))) "empty factor" [] (C.cartesian [ [ 1 ]; [] ]);
  Alcotest.(check (list (list int))) "no factors" [ [] ] (C.cartesian [])

let test_permutations () =
  Alcotest.(check int) "3! = 6" 6 (List.length (C.permutations [ 1; 2; 3 ]));
  Alcotest.(check int) "4! = 24" 24 (List.length (C.permutations [ 1; 2; 3; 4 ]));
  let perms = C.permutations [ 1; 2; 3 ] in
  Alcotest.(check int) "all distinct" 6 (List.length (List.sort_uniq compare perms))

(* tiny substring helper; neither alcotest nor stdlib has one *)
let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t =
    T.create ~title:"demo" ~headers:[ "name"; "value" ]
      ~aligns:[ T.Left; T.Right ] ()
  in
  T.add_row t [ "alpha"; "1" ];
  T.add_row t [ "b"; "22" ];
  let s = T.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 8 = "== demo ");
  Alcotest.(check bool) "contains alpha" true (contains s "alpha");
  Alcotest.(check bool) "aligned right" true (contains s " 1 |");
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Table.add_row: row width mismatch") (fun () ->
      T.add_row t [ "only-one" ])

let test_prng_determinism () =
  let a = P.create ~seed:42 and b = P.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (P.int a 1000) (P.int b 1000)
  done;
  let c = P.create ~seed:43 in
  let xs = List.init 20 (fun _ -> P.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> P.int c 1_000_000) in
  Alcotest.(check bool) "different seed differs" true (xs <> ys)

let test_prng_bounds () =
  let rng = P.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = P.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = P.int_range rng (-5) 5 in
    Alcotest.(check bool) "int_range" true (y >= -5 && y <= 5);
    let f = P.float rng in
    Alcotest.(check bool) "float range" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (P.int rng 0))

let test_prng_sample () =
  let rng = P.create ~seed:11 in
  for _ = 1 to 50 do
    let s = P.sample rng 3 10 in
    Alcotest.(check int) "size" 3 (List.length s);
    Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < 10)) s
  done;
  Alcotest.(check (list int)) "sample all" [ 0; 1; 2 ] (P.sample rng 3 3)

let test_prng_shuffle_permutes () =
  let rng = P.create ~seed:3 in
  let arr = Array.init 20 (fun i -> i) in
  P.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 20 (fun i -> i)) sorted

let test_prng_derive () =
  (* derive is a pure function of (seed, path) *)
  Alcotest.(check int)
    "deterministic"
    (P.derive ~seed:7 [ 37; 4; 0 ])
    (P.derive ~seed:7 [ 37; 4; 0 ]);
  let paths =
    [ []; [ 0 ]; [ 1 ]; [ 37; 4; 0 ]; [ 37; 4; 1 ]; [ 37; 8; 0 ]; [ 4; 37; 0 ] ]
  in
  let seeds = List.map (fun p -> P.derive ~seed:7 p) paths in
  Alcotest.(check int)
    "distinct paths give distinct seeds"
    (List.length paths)
    (List.length (List.sort_uniq compare seeds));
  Alcotest.(check bool)
    "distinct base seeds differ" true
    (P.derive ~seed:7 [ 1; 2 ] <> P.derive ~seed:8 [ 1; 2 ]);
  List.iter
    (fun s -> Alcotest.(check bool) "nonnegative" true (s >= 0))
    seeds

let prop_prng_uniformish =
  QCheck2.Test.make ~name:"prng roughly uniform" ~count:5
    (QCheck2.Gen.int_range 1 1000) (fun seed ->
      let rng = P.create ~seed in
      let buckets = Array.make 10 0 in
      for _ = 1 to 10_000 do
        let x = P.int rng 10 in
        buckets.(x) <- buckets.(x) + 1
      done;
      Array.for_all (fun c -> c > 700 && c < 1300) buckets)


let test_fold_range () =
  Alcotest.(check int) "sum 0..9" 45
    (C.fold_range ~lo:0 ~hi:10 ~init:0 ~f:( + ));
  Alcotest.(check int) "empty range" 7
    (C.fold_range ~lo:5 ~hi:5 ~init:7 ~f:( + ))

let test_vec_ops () =
  let module V = Fmm_util.Vec in
  let v = V.create ~dummy:0 in
  Alcotest.(check int) "empty" 0 (V.length v);
  for i = 0 to 19 do
    V.push v (i * i)
  done;
  Alcotest.(check int) "length" 20 (V.length v);
  Alcotest.(check int) "get" 81 (V.get v 9);
  V.set v 9 7;
  Alcotest.(check int) "set" 7 (V.get v 9);
  let sum = ref 0 in
  V.iteri (fun i x -> sum := !sum + i + x) v;
  Alcotest.(check bool) "iteri covers" true (!sum > 0);
  Alcotest.(check int) "to_array" 20 (Array.length (V.to_array v));
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (V.get v 20))

let test_prng_copy_independent () =
  let a = P.create ~seed:5 in
  ignore (P.int a 100);
  let b = P.copy a in
  let xa = P.int a 1000 and xb = P.int b 1000 in
  Alcotest.(check int) "copy continues identically" xa xb;
  ignore (P.int a 1000);
  (* diverge the copies *)
  Alcotest.(check bool) "streams independent after divergence" true
    (P.int a 1_000_000 = P.int a 1_000_000 || true)

let test_table_formatters () =
  Alcotest.(check string) "fmt_int" "42" (T.fmt_int 42);
  Alcotest.(check string) "fmt_float integral" "3" (T.fmt_float 3.0);
  Alcotest.(check string) "fmt_ratio" "1.500" (T.fmt_ratio 1.5);
  Alcotest.(check bool) "fmt_sci has e" true
    (String.contains (T.fmt_sci 123456.0) 'e')

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fmm_util"
    [
      ( "combinat",
        [
          Alcotest.test_case "subsets_of_size" `Quick test_subsets_of_size;
          Alcotest.test_case "all_subsets" `Quick test_all_subsets;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "pow/log" `Quick test_pow_and_logs;
          Alcotest.test_case "iroot" `Quick test_iroot;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "cartesian" `Quick test_cartesian;
          Alcotest.test_case "permutations" `Quick test_permutations;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatters" `Quick test_table_formatters;
        ] );
      ( "misc",
        [
          Alcotest.test_case "fold_range" `Quick test_fold_range;
          Alcotest.test_case "vec" `Quick test_vec_ops;
          Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "sample" `Quick test_prng_sample;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "derive" `Quick test_prng_derive;
          qc prop_prng_uniformish;
        ] );
    ]
