(* The COSMA-style schedule generator (lib/sched): contiguous splits of
   sequential orders and (p1, p2, p3) grid decompositions. Everything
   it emits must (a) census-agree with the word-counting executor,
   (b) replay cleanly through the crash-aware log checker, and (c) on
   the acceptance cases communicate no more than the BFS assignment it
   is meant to improve on. *)

module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module Cd = Fmm_cdag.Cdag
module Im = Fmm_cdag.Implicit
module W = Fmm_machine.Workload
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module PE = Fmm_machine.Par_exec
module PM = Fmm_machine.Par_model
module Pc = Fmm_analysis.Par_check
module Dg = Fmm_analysis.Diagnostic
module G = Fmm_sched.Generator

let check = Alcotest.check
let strassen = List.find (fun a -> A.name a = "Strassen") S.registry

let is_square alg =
  let n0, m0, k0 = A.dims alg in
  n0 = m0 && m0 = k0

(* small square cases across the registry: enough shapes to exercise
   every decode path without slowing the suite *)
let small_cases =
  List.filter_map
    (fun alg ->
      if not (is_square alg) then None
      else
        let n0, _, _ = A.dims alg in
        let n = n0 * n0 in
        if Cd.n_vertices (Cd.build alg ~n) <= 60_000 then Some (alg, n) else None)
    S.registry

let contiguous name (s : G.split) =
  check Alcotest.int (name ^ " cuts lo") 0 s.G.cuts.(0);
  check Alcotest.int (name ^ " cuts hi") (Array.length s.G.order)
    s.G.cuts.(s.G.procs);
  for k = 0 to s.G.procs - 1 do
    check Alcotest.bool (name ^ " cuts monotone") true
      (s.G.cuts.(k) <= s.G.cuts.(k + 1));
    for i = s.G.cuts.(k) to s.G.cuts.(k + 1) - 1 do
      check Alcotest.int
        (Printf.sprintf "%s part of position %d" name i)
        k
        s.G.assignment.(s.G.order.(i))
    done
  done

(* the split's own census must be the executor's: same charging rule,
   independently computed *)
let census_parity name w (s : G.split) =
  let r = PE.run w ~procs:s.G.procs ~assignment:s.G.assignment in
  check Alcotest.int (name ^ " census = executor") r.PE.total_words s.G.crossing;
  r

let test_split_census_parity () =
  List.iter
    (fun (alg, n) ->
      let cd = Cd.build alg ~n in
      let w = W.of_cdag cd in
      let order = Array.of_list (Ord.recursive_dfs cd) in
      List.iter
        (fun procs ->
          let name = Printf.sprintf "%s n=%d P=%d" (A.name alg) n procs in
          let s = G.split_order w ~procs order in
          contiguous name s;
          ignore (census_parity name w s);
          Array.iter
            (fun p ->
              check Alcotest.bool (name ^ " owner in range") true
                (p >= 0 && p < procs))
            s.G.assignment)
        [ 1; 2; 3; 7 ])
    small_cases

let test_split_single_proc_free () =
  let cd = Cd.build strassen ~n:8 in
  let w = W.of_cdag cd in
  let s = G.split_order w ~procs:1 (Array.of_list (Ord.recursive_dfs cd)) in
  check Alcotest.int "P=1 crossing" 0 s.G.crossing

let test_split_validates () =
  List.iter
    (fun (alg, n) ->
      let cd = Cd.build alg ~n in
      let w = W.of_cdag cd in
      let order = Array.of_list (Ord.recursive_dfs cd) in
      List.iter
        (fun procs ->
          let name = Printf.sprintf "%s n=%d P=%d" (A.name alg) n procs in
          let s = G.split_order w ~procs order in
          let log = G.exec_log w ~procs ~assignment:s.G.assignment in
          let transfers =
            List.length
              (List.filter (function Pc.Transfer _ -> true | _ -> false) log)
          in
          check Alcotest.int (name ^ " log transfers = census") s.G.crossing
            transfers;
          let replay = G.validate w ~procs ~assignment:s.G.assignment in
          check Alcotest.int (name ^ " replay errors") 0
            (Dg.n_errors replay.Pc.report);
          check Alcotest.int (name ^ " lost outputs") 0 replay.Pc.lost_outputs)
        [ 2; 7 ])
    small_cases

let bfs_depth ~t ~procs =
  let rec go d subtrees = if subtrees >= procs then d else go (d + 1) (subtrees * t) in
  go 0 1

(* the acceptance seed: on Strassen the split of the cache-oblivious
   DFS order communicates no more than the BFS subtree deal at the
   same processor count (CS2 runs the full (P, M) sweep) *)
let test_split_beats_bfs () =
  List.iter
    (fun (n, procs) ->
      let cd = Cd.build strassen ~n in
      let w = W.of_cdag cd in
      let t = 7 in
      let depth = bfs_depth ~t ~procs in
      let bfs = PE.run w ~procs ~assignment:(PE.bfs_assignment cd ~depth ~procs) in
      let s = G.split_order w ~procs (Array.of_list (Ord.recursive_dfs cd)) in
      check Alcotest.bool
        (Printf.sprintf "split <= bfs words (n=%d P=%d)" n procs)
        true
        (s.G.crossing <= bfs.PE.total_words))
    [ (16, 7); (16, 49); (32, 7); (32, 49) ]

let test_split_implicit_agrees () =
  List.iter
    (fun (n, procs) ->
      let imp = Im.create strassen ~n in
      let s = G.split_implicit imp ~procs in
      let name = Printf.sprintf "implicit n=%d P=%d" n procs in
      contiguous name s;
      let w = W.of_cdag (Cd.build strassen ~n) in
      ignore (census_parity name w s))
    [ (8, 3); (8, 7); (16, 7) ]

let test_of_trace_recovers_order () =
  let cd = Cd.build strassen ~n:8 in
  let w = W.of_cdag cd in
  let order = Ord.recursive_dfs cd in
  (* LRU never recomputes: the first-compute sequence is the order *)
  let res = Sch.run_lru w ~cache_size:4096 order in
  check
    Alcotest.(list int)
    "lru first-compute order" order
    (Array.to_list (G.of_trace w res.Sch.trace));
  (* rematerialization recomputes freely, but the first computes still
     enumerate each vertex once, topologically *)
  let rem = Sch.run_rematerialize w ~cache_size:64 order in
  let o = Array.to_list (G.of_trace w rem.Sch.trace) in
  check Alcotest.bool "remat first-compute order valid" true
    (W.is_valid_order w o);
  (* and the split pipeline consumes it directly *)
  let s = G.split_order w ~procs:3 (Array.of_list o) in
  ignore (census_parity "remat split" w s)

let test_grid_candidates () =
  let c12 = G.grid_candidates ~p:12 in
  (* tau_3(12) = 18 ordered factor triples *)
  check Alcotest.int "count" 18 (List.length c12);
  List.iter
    (fun (a, b, c) -> check Alcotest.int "product" 12 (a * b * c))
    c12;
  check Alcotest.bool "lex sorted" true (List.sort compare c12 = c12);
  check
    Alcotest.(list (triple int int int))
    "p=4" [ (1, 1, 4); (1, 2, 2); (1, 4, 1); (2, 1, 2); (2, 2, 1); (4, 1, 1) ]
    (G.grid_candidates ~p:4)

let test_grid_assignment_rejects () =
  let classical = Cd.build strassen ~n:8 ~cutoff:8 in
  Alcotest.check_raises "degenerate grid"
    (Invalid_argument
       "Par_model.grid_3d: degenerate grid (2, 2, 3): product 12 <> P = 8")
    (fun () ->
      ignore (G.grid_assignment classical ~procs:8 ~grid:(2, 2, 3)));
  let fast = Cd.build strassen ~n:8 in
  Alcotest.check_raises "non-classical CDAG"
    (Invalid_argument
       "Generator.grid_assignment: CDAG must be pure classical (cutoff = n)")
    (fun () -> ignore (G.grid_assignment fast ~procs:8 ~grid:(2, 2, 2)))

let test_grid_search_measured_best () =
  let cd = Cd.build strassen ~n:8 ~cutoff:8 in
  let w = W.of_cdag cd in
  let procs = 8 in
  let ((p1, p2, p3) as grid), cost, r, asg = G.grid_search cd ~procs in
  check Alcotest.int "grid product" procs (p1 * p2 * p3);
  check Alcotest.int "model p" procs cost.PM.p;
  (* the returned measurement is the returned assignment's *)
  let r' = PE.run w ~procs ~assignment:asg in
  check Alcotest.int "measured repro" r'.PE.total_words r.PE.total_words;
  (* argmin over every candidate *)
  List.iter
    (fun g ->
      let rg =
        PE.run w ~procs ~assignment:(G.grid_assignment cd ~procs ~grid:g)
      in
      check Alcotest.bool
        (Printf.sprintf "best <= (%d,%d,%d)" p1 p2 p3)
        true
        (r.PE.total_words <= rg.PE.total_words))
    (G.grid_candidates ~p:procs);
  ignore grid;
  (* and it replays cleanly *)
  let replay = G.validate w ~procs ~assignment:asg in
  check Alcotest.int "grid replay errors" 0 (Dg.n_errors replay.Pc.report);
  check Alcotest.int "grid lost outputs" 0 replay.Pc.lost_outputs

let test_memind_bound () =
  let cd = Cd.build strassen ~n:16 in
  let b = G.memind_bound cd ~procs:7 in
  (* n^2 / P^{2/omega0} with the algorithm's own omega0 *)
  let expect =
    256.0 /. (7.0 ** (2.0 /. A.omega0 strassen))
  in
  check Alcotest.bool "bound value" true (abs_float (b -. expect) < 1e-9);
  (* measured traffic respects it on the acceptance shapes *)
  let w = W.of_cdag cd in
  let s = G.split_order w ~procs:7 (Array.of_list (Ord.recursive_dfs cd)) in
  let r = PE.run w ~procs:7 ~assignment:s.G.assignment in
  check Alcotest.bool "max words >= bound" true (float_of_int r.PE.max_words >= b)

let () =
  Alcotest.run "fmm_sched"
    [
      ( "split",
        [
          Alcotest.test_case "census parity" `Quick test_split_census_parity;
          Alcotest.test_case "P=1 free" `Quick test_split_single_proc_free;
          Alcotest.test_case "replay valid" `Quick test_split_validates;
          Alcotest.test_case "beats BFS" `Quick test_split_beats_bfs;
          Alcotest.test_case "implicit streamed" `Quick
            test_split_implicit_agrees;
          Alcotest.test_case "of_trace" `Quick test_of_trace_recovers_order;
        ] );
      ( "grid",
        [
          Alcotest.test_case "candidates" `Quick test_grid_candidates;
          Alcotest.test_case "rejections" `Quick test_grid_assignment_rejects;
          Alcotest.test_case "measured best" `Quick
            test_grid_search_measured_best;
        ] );
      ( "bounds",
        [ Alcotest.test_case "theorem 4.1 gate" `Quick test_memind_bound ] );
    ]
