(* Tests for fmm_obs: the JSON tree (emit/parse roundtrip, strictness),
   the metrics registry, the report schema (the golden contract behind
   BENCH_*.json) and the baseline diff that `fmmlab bench --baseline`
   turns into an exit code. *)

module J = Fmm_obs.Json
module M = Fmm_obs.Metrics
module Exp = Fmm_obs.Experiment
module Sink = Fmm_obs.Sink

(* --- JSON --- *)

let sample_json =
  J.Obj
    [
      ("null", J.Null);
      ("true", J.Bool true);
      ("false", J.Bool false);
      ("int", J.Int 42);
      ("neg", J.Int (-17));
      ("float", J.Float 0.1);
      ("tiny", J.Float 1e-7);
      ("big", J.Float 3.276e7);
      ("str", J.Str "hi \"there\"\nline2\tunicode \xe2\x88\x9a");
      ("list", J.List [ J.Int 1; J.Str "two"; J.List []; J.Obj [] ]);
      ("obj", J.Obj [ ("nested", J.Bool false) ]);
    ]

let test_json_roundtrip () =
  let s = J.to_string sample_json in
  Alcotest.(check bool) "roundtrip" true (J.of_string s = sample_json);
  (* emission is deterministic *)
  Alcotest.(check string) "deterministic" s (J.to_string sample_json)

let test_json_float_fidelity () =
  List.iter
    (fun x ->
      match J.of_string (J.to_string (J.Float x)) with
      | J.Float y -> Alcotest.(check (float 0.)) (string_of_float x) x y
      | J.Int y -> Alcotest.(check (float 0.)) (string_of_float x) x (float_of_int y)
      | _ -> Alcotest.fail "not a number")
    [ 0.1; -0.1; 1e-300; 1e300; 12.010203; 1. /. 3.; 0. ];
  (* JSON has no non-finite literals: they emit as null *)
  Alcotest.(check string) "nan" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string) "inf" "null" (J.to_string (J.Float Float.infinity))

let test_json_escapes () =
  (match J.of_string {|"a\nbA\t\\"|} with
  | J.Str s -> Alcotest.(check string) "escapes" "a\nbA\t\\" s
  | _ -> Alcotest.fail "not a string");
  match J.of_string {|"é"|} with
  | J.Str s -> Alcotest.(check string) "utf8 from \\u" "\xc3\xa9" s
  | _ -> Alcotest.fail "not a string"

let test_json_rejects_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "rejects %S" s) true
        (try
           ignore (J.of_string s);
           false
         with J.Parse_error _ -> true))
    [ "{"; "[1,]"; "tru"; "1 2"; "{\"a\":}"; "\"unterminated"; ""; "{'a':1}"; "[01]" ]

let test_json_members () =
  let j = J.of_string {|{"a": {"b": [1, 2.5, "x"]}, "n": 7}|} in
  Alcotest.(check (option int)) "int member" (Some 7)
    (Option.bind (J.member "n" j) J.to_int_opt);
  Alcotest.(check bool) "missing member" true (J.member "zz" j = None);
  match Option.bind (J.member "a" j) (J.member "b") with
  | Some (J.List [ J.Int 1; J.Float f; J.Str "x" ]) ->
    Alcotest.(check (float 0.)) "2.5" 2.5 f
  | _ -> Alcotest.fail "nested list shape"

(* --- metrics registry --- *)

let test_metrics_registry () =
  let m = M.create () in
  M.incr m "hits";
  M.incr ~by:4 m "hits";
  M.gauge m "temp" 3.5;
  M.gauge m "temp" 4.5;
  let x = M.time m "work" (fun () -> 42) in
  Alcotest.(check int) "time returns body value" 42 x;
  M.rowf m ~section:"s" ~params:[ ("n", M.Int 8) ] [ ("io", M.Int 100) ];
  M.note m "a note";
  let snap = M.snapshot m in
  Alcotest.(check (option (float 0.))) "counter" (Some 5.)
    (List.assoc_opt "hits" snap);
  Alcotest.(check (option (float 0.))) "gauge overwrites" (Some 4.5)
    (List.assoc_opt "temp" snap);
  Alcotest.(check bool) "timer suffixed _s" true
    (List.mem_assoc "work_s" snap);
  Alcotest.(check int) "one row" 1 (List.length (M.rows m));
  Alcotest.(check (list string)) "notes" [ "a note" ] (M.notes m)

let test_metrics_ratio () =
  let r = M.row ~section:"s" [ ("ratio", M.Float 1.5) ] in
  Alcotest.(check (option (float 0.))) "float ratio" (Some 1.5) (M.ratio r);
  let r = M.row ~section:"s" [ ("ratio", M.Int 2) ] in
  Alcotest.(check (option (float 0.))) "int ratio" (Some 2.) (M.ratio r);
  let r = M.row ~section:"s" [ ("io", M.Int 2) ] in
  Alcotest.(check bool) "no ratio" true (M.ratio r = None)

(* --- the report schema (golden contract) --- *)

let demo_outcome () =
  Exp.run
    (Exp.define ~id:"DEMO" ~title:"demo experiment" (fun m ->
         M.incr m "steps";
         M.rowf m ~section:"sec A"
           ~params:[ ("n", M.Int 8); ("algorithm", M.Str "Strassen") ]
           [ ("measured", M.Int 120); ("bound", M.Float 100.); ("ratio", M.Float 1.2) ];
         M.rowf m ~section:"sec A"
           ~params:[ ("n", M.Int 16); ("algorithm", M.Str "Strassen") ]
           [ ("measured", M.Int 700); ("bound", M.Float 500.); ("ratio", M.Float 1.4) ];
         M.note m "hello"))

let test_report_schema () =
  let o = demo_outcome () in
  let j = Sink.report_to_json ~created:123.5 [ o ] in
  (* the golden top-level shape of BENCH_*.json *)
  Alcotest.(check (option int)) "schema_version" (Some Sink.schema_version)
    (Option.bind (J.member "schema_version" j) J.to_int_opt);
  Alcotest.(check (option string)) "generator" (Some "fmmlab bench")
    (Option.bind (J.member "generator" j) J.to_str_opt);
  Alcotest.(check (option (float 0.))) "created_unix" (Some 123.5)
    (Option.bind (J.member "created_unix" j) J.to_float_opt);
  let exp0 =
    match Option.bind (J.member "experiments" j) J.to_list_opt with
    | Some [ e ] -> e
    | _ -> Alcotest.fail "experiments list"
  in
  Alcotest.(check (option string)) "id" (Some "DEMO")
    (Option.bind (J.member "id" exp0) J.to_str_opt);
  List.iter
    (fun field ->
      Alcotest.(check bool) ("has " ^ field) true (J.member field exp0 <> None))
    [ "title"; "wall_s"; "scalars"; "rows"; "notes" ];
  let row0 =
    match Option.bind (J.member "rows" exp0) J.to_list_opt with
    | Some (r :: _) -> r
    | _ -> Alcotest.fail "rows list"
  in
  Alcotest.(check (option string)) "row section" (Some "sec A")
    (Option.bind (J.member "section" row0) J.to_str_opt);
  Alcotest.(check (option int)) "row param n" (Some 8)
    (Option.bind (Option.bind (J.member "params" row0) (J.member "n")) J.to_int_opt);
  Alcotest.(check (option (float 0.))) "row metric ratio" (Some 1.2)
    (Option.bind
       (Option.bind (J.member "metrics" row0) (J.member "ratio"))
       J.to_float_opt)

let test_report_roundtrip () =
  let o = demo_outcome () in
  let j = J.of_string (J.to_string (Sink.report_to_json ~created:1. [ o ])) in
  match Sink.outcomes_of_json j with
  | Error e -> Alcotest.fail e
  | Ok [ o' ] ->
    Alcotest.(check string) "id" o.Exp.id o'.Exp.id;
    Alcotest.(check string) "title" o.Exp.title o'.Exp.title;
    Alcotest.(check bool) "rows survive" true (o'.Exp.rows = o.Exp.rows);
    Alcotest.(check bool) "notes survive" true (o'.Exp.notes = o.Exp.notes);
    Alcotest.(check bool) "scalars survive" true
      (List.mem_assoc "steps" o'.Exp.scalars)
  | Ok _ -> Alcotest.fail "one outcome expected"

let test_report_rejects_wrong_schema () =
  (match Sink.outcomes_of_json (J.of_string {|{"schema_version": 999}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong version");
  match Sink.outcomes_of_json (J.of_string {|{"x": 1}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted non-report"

(* --- the baseline diff --- *)

let outcome_with_ratio id ratio =
  {
    Exp.id;
    title = id;
    rows =
      [
        M.row ~section:"sec"
          ~params:[ ("n", M.Int 8) ]
          [ ("measured", M.Int 100); ("ratio", M.Float ratio) ];
      ];
    notes = [];
    scalars = [];
    wall_s = 1.0;
  }

let test_diff_clean () =
  let base = [ outcome_with_ratio "X" 1.2 ] in
  let d = Sink.diff ~tolerance:0.1 ~baseline:base ~current:base () in
  Alcotest.(check int) "compared" 1 d.Sink.n_compared;
  Alcotest.(check int) "no regressions" 0 d.Sink.n_regressions;
  Alcotest.(check int) "no improvements" 0 d.Sink.n_improvements;
  (* within tolerance: still clean *)
  let d =
    Sink.diff ~tolerance:0.1 ~baseline:base
      ~current:[ outcome_with_ratio "X" 1.25 ] ()
  in
  Alcotest.(check int) "within tolerance" 0 d.Sink.n_regressions

let test_diff_detects_regression () =
  let base = [ outcome_with_ratio "X" 1.2 ] in
  let d =
    Sink.diff ~tolerance:0.1 ~baseline:base
      ~current:[ outcome_with_ratio "X" 1.5 ] ()
  in
  Alcotest.(check int) "regression" 1 d.Sink.n_regressions;
  Alcotest.(check bool) "line names the row" true
    (List.exists
       (fun l ->
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length l && (String.sub l i n = sub || go (i + 1))
           in
           go 0
         in
         has "REGRESSION" && has "X" && has "n=8")
       d.Sink.lines)

let test_diff_detects_improvement_and_new () =
  let base = [ outcome_with_ratio "X" 1.5 ] in
  let d =
    Sink.diff ~tolerance:0.1 ~baseline:base
      ~current:[ outcome_with_ratio "X" 1.2; outcome_with_ratio "Y" 9.9 ] ()
  in
  Alcotest.(check int) "no regressions" 0 d.Sink.n_regressions;
  Alcotest.(check int) "improvement" 1 d.Sink.n_improvements;
  Alcotest.(check int) "unmatched" 1 d.Sink.n_unmatched

let test_diff_time_gate () =
  let base = [ outcome_with_ratio "X" 1.2 ] in
  let cur = [ { (outcome_with_ratio "X" 1.2) with Exp.wall_s = 10.0 } ] in
  (* by default wall clocks are not gated *)
  let d = Sink.diff ~tolerance:0.1 ~baseline:base ~current:cur () in
  Alcotest.(check int) "no time gate by default" 0 d.Sink.n_regressions;
  let d =
    Sink.diff ~tolerance:0.1 ~time_tolerance:0.5 ~baseline:base ~current:cur ()
  in
  Alcotest.(check int) "time gate fires" 1 d.Sink.n_regressions

(* --- experiment registry --- *)

let test_registry_select () =
  let reg = Exp.Registry.create () in
  let _ = Exp.Registry.define reg ~id:"A" ~title:"a" (fun _ -> ()) in
  let _ = Exp.Registry.define reg ~id:"B" ~title:"b" (fun _ -> ()) in
  let _ = Exp.Registry.define reg ~id:"C" ~title:"c" (fun _ -> ()) in
  Alcotest.(check (list string)) "ids" [ "A"; "B"; "C" ] (Exp.Registry.ids reg);
  (match Exp.Registry.select reg (Some [ "C"; "A" ]) with
  | Ok es ->
    Alcotest.(check (list string)) "registration order kept" [ "A"; "C" ]
      (List.map Exp.id es)
  | Error e -> Alcotest.fail e);
  (match Exp.Registry.select reg (Some [ "A"; "ZZ" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown id accepted");
  (* a filter that matches nothing is an error naming the known ids,
     never a silent Ok [] *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Exp.Registry.select reg (Some []) with
  | Error e ->
    Alcotest.(check bool) "empty selection lists known ids" true
      (contains e "A" && contains e "B" && contains e "C")
  | Ok _ -> Alcotest.fail "empty selection accepted");
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Experiment.Registry.register: duplicate id \"A\"") (fun () ->
      ignore (Exp.Registry.define reg ~id:"A" ~title:"dup" (fun _ -> ())))

let test_bench_registry_covers_acceptance_ids () =
  let ids = Exp.Registry.ids Fmm_experiments.Experiments.registry in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("registry has " ^ id) true (List.mem id ids))
    [ "T1"; "TH1seq"; "TH1par"; "RC" ]

(* --- table sink --- *)

let test_tables_group_sections () =
  let o = demo_outcome () in
  let tables = Sink.tables_of_outcome o in
  Alcotest.(check int) "one section, one table" 1 (List.length tables);
  Alcotest.(check int) "both rows in it" 2
    (Fmm_util.Table.n_rows (List.hd tables))

let () =
  Alcotest.run "fmm_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float fidelity" `Quick test_json_float_fidelity;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
          Alcotest.test_case "members" `Quick test_json_members;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "ratio" `Quick test_metrics_ratio;
        ] );
      ( "report",
        [
          Alcotest.test_case "schema" `Quick test_report_schema;
          Alcotest.test_case "roundtrip" `Quick test_report_roundtrip;
          Alcotest.test_case "rejects wrong schema" `Quick
            test_report_rejects_wrong_schema;
        ] );
      ( "diff",
        [
          Alcotest.test_case "clean" `Quick test_diff_clean;
          Alcotest.test_case "regression" `Quick test_diff_detects_regression;
          Alcotest.test_case "improvement + new" `Quick
            test_diff_detects_improvement_and_new;
          Alcotest.test_case "time gate" `Quick test_diff_time_gate;
        ] );
      ( "registry",
        [
          Alcotest.test_case "select" `Quick test_registry_select;
          Alcotest.test_case "bench ids" `Quick
            test_bench_registry_covers_acceptance_ids;
          Alcotest.test_case "tables" `Quick test_tables_group_sections;
        ] );
    ]
