(* Differential suite for the implicit (recursion-indexed) CDAG core:
   every observable of [Fmm_cdag.Implicit] must agree bit-exactly with
   the explicit builder [Fmm_cdag.Cdag.build] wherever the explicit
   graph fits in memory — ids, roles, both adjacency directions with
   their insertion orders, coefficients, recursion nodes, sub-problem
   selections, censuses — and the streaming consumers (LRU executor,
   segment analysis, MAXLIVE, BFS assignment, lint) must agree with
   their explicit counterparts event-for-event. *)

module Cd = Fmm_cdag.Cdag
module Im = Fmm_cdag.Implicit
module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module D = Fmm_graph.Digraph
module P = Fmm_util.Prng
module W = Fmm_machine.Workload
module Sch = Fmm_machine.Schedulers
module SE = Fmm_machine.Stream_exec
module Seg = Fmm_machine.Segments
module Pe = Fmm_machine.Par_exec
module Df = Fmm_analysis.Dataflow
module Lint = Fmm_analysis.Cdag_lint
module Dg = Fmm_analysis.Diagnostic

let strassen = List.find (fun a -> A.name a = "Strassen") S.registry

let is_square alg =
  let n0, m0, k0 = A.dims alg in
  n0 = m0 && m0 = k0

(* Every square-base registry algorithm at every size whose explicit
   graph is small enough to build (includes the degenerate n = 1). *)
let square_cases =
  List.concat_map
    (fun alg ->
      if not (is_square alg) then []
      else begin
        let n0, _, _ = A.dims alg in
        let rec sizes n acc =
          if Im.n_vertices (Im.create alg ~n) <= 130_000 then
            sizes (n * n0) ((alg, n) :: acc)
          else acc
        in
        List.rev (sizes 1 [])
      end)
    S.registry

(* Hybrid (cutoff > 1) variants of the feasible cases: every cutoff
   that is a power of the base dimension in (1, n]. *)
let hybrid_cases =
  List.concat_map
    (fun (alg, n) ->
      if n <= 1 then []
      else begin
        let n0, _, _ = A.dims alg in
        let rec cuts c acc = if c > n then List.rev acc else cuts (c * n0) (c :: acc) in
        cuts n0 []
        |> List.filter_map (fun c ->
               if Im.n_vertices (Im.create ~cutoff:c alg ~n) <= 130_000 then
                 Some (alg, n, c)
               else None)
      end)
    square_cases

let check = Alcotest.check
let int_l = Alcotest.(list int)

let case_name ?(cutoff = 1) alg n =
  if cutoff = 1 then Printf.sprintf "%s n=%d" (A.name alg) n
  else Printf.sprintf "%s n=%d cutoff=%d" (A.name alg) n cutoff

(* --- full structural equality against the explicit builder --- *)

let check_structure ?cutoff alg n =
  let name = case_name ?cutoff alg n in
  let cd = Cd.build ?cutoff alg ~n in
  let imp = Im.create ?cutoff alg ~n in
  let nv = Cd.n_vertices cd in
  check Alcotest.int (name ^ " n_vertices") nv (Im.n_vertices imp);
  check Alcotest.int (name ^ " n_edges") (Cd.n_edges cd) (Im.n_edges imp);
  check
    Alcotest.(list (pair string int))
    (name ^ " stats") (Cd.stats cd) (Im.stats imp);
  check int_l (name ^ " a_inputs")
    (Array.to_list (Cd.a_inputs cd))
    (Array.to_list (Im.a_inputs imp));
  check int_l (name ^ " b_inputs")
    (Array.to_list (Cd.b_inputs cd))
    (Array.to_list (Im.b_inputs imp));
  check int_l (name ^ " outputs")
    (Array.to_list (Cd.outputs cd))
    (Array.to_list (Im.outputs imp));
  let g = Cd.graph cd in
  let dg = Im.to_digraph imp in
  check Alcotest.int (name ^ " digraph edges") (D.n_edges g) (D.n_edges dg);
  for v = 0 to nv - 1 do
    if Cd.role cd v <> Im.role imp v then
      Alcotest.failf "%s: role mismatch at %d" name v;
    (* both adjacency directions, including insertion order *)
    let ein = D.in_neighbors g v in
    if ein <> D.in_neighbors dg v then
      Alcotest.failf "%s: in_neighbors mismatch at %d" name v;
    if D.out_neighbors g v <> D.out_neighbors dg v then
      Alcotest.failf "%s: out_neighbors mismatch at %d" name v;
    (* iter_preds order is builder insertion order = reverse of the
       cons'd in_neighbors list *)
    let ip = Im.preds imp v in
    if List.rev (List.map fst ip) <> ein then
      Alcotest.failf "%s: preds order mismatch at %d" name v;
    List.iter
      (fun (p, c) ->
        if Cd.edge_coeff cd p v <> c then
          Alcotest.failf "%s: coeff mismatch on (%d, %d)" name p v;
        if Im.edge_coeff imp p v <> c then
          Alcotest.failf "%s: edge_coeff disagrees with preds at (%d, %d)" name
            p v)
      ip;
    (* succs is ascending-consumer = reverse of cons'd out_neighbors *)
    if Im.succs imp v <> List.rev (D.out_neighbors g v) then
      Alcotest.failf "%s: succs mismatch at %d" name v;
    if Im.in_degree imp v <> D.in_degree g v then
      Alcotest.failf "%s: in_degree mismatch at %d" name v;
    if Im.out_degree imp v <> D.out_degree g v then
      Alcotest.failf "%s: out_degree mismatch at %d" name v
  done

let test_structure () =
  List.iter (fun (alg, n) -> check_structure alg n) square_cases

(* --- to_explicit reconstructs the builder's Cdag.t exactly --- *)

let check_to_explicit ?cutoff alg n =
  let name = case_name ?cutoff alg n in
  let cd = Cd.build ?cutoff alg ~n in
  let cd2 = Im.to_explicit (Im.create ?cutoff alg ~n) in
  check Alcotest.int (name ^ " cutoff") (Cd.cutoff cd) (Cd.cutoff cd2);
  check
    Alcotest.(list (pair string int))
    (name ^ " stats") (Cd.stats cd) (Cd.stats cd2);
  if Cd.nodes cd <> Cd.nodes cd2 then
    Alcotest.failf "%s: reconstructed node list differs" name;
  check int_l (name ^ " outputs")
    (Array.to_list (Cd.outputs cd))
    (Array.to_list (Cd.outputs cd2));
  let g = Cd.graph cd and g2 = Cd.graph cd2 in
  for v = 0 to Cd.n_vertices cd - 1 do
    if Cd.role cd v <> Cd.role cd2 v then
      Alcotest.failf "%s: role mismatch at %d" name v;
    if D.in_neighbors g v <> D.in_neighbors g2 v then
      Alcotest.failf "%s: in_neighbors mismatch at %d" name v;
    if D.out_neighbors g v <> D.out_neighbors g2 v then
      Alcotest.failf "%s: out_neighbors mismatch at %d" name v;
    List.iter
      (fun p ->
        if Cd.edge_coeff cd p v <> Cd.edge_coeff cd2 p v then
          Alcotest.failf "%s: coeff mismatch on (%d, %d)" name p v)
      (D.in_neighbors g v)
  done

let test_to_explicit () =
  List.iter (fun (alg, n) -> check_to_explicit alg n) square_cases

(* --- recursion nodes and sub-problem selection (Lemma 2.2) --- *)

let check_nodes ?cutoff alg n =
  let name = case_name ?cutoff alg n in
  let cd = Cd.build ?cutoff alg ~n in
  let imp = Im.create ?cutoff alg ~n in
  let n0, _, _ = A.dims alg in
  let levels = Im.levels imp in
  for depth = 0 to levels do
    let enodes = Cd.nodes_at_depth cd ~depth in
    let inodes = ref [] in
    Im.iter_nodes_at_depth imp ~depth ~f:(fun nd -> inodes := nd :: !inodes);
    let inodes = List.rev !inodes in
    check Alcotest.int
      (Printf.sprintf "%s depth %d count" name depth)
      (List.length enodes)
      (Im.node_count_at_depth imp ~depth);
    List.iter2
      (fun (e : Cd.node) (i : Im.node_info) ->
        if
          e.Cd.r <> i.Im.r || e.Cd.depth <> i.Im.depth
          || e.Cd.subtree_lo <> i.Im.lo
          || e.Cd.subtree_hi <> i.Im.hi
        then Alcotest.failf "%s: node shape mismatch at depth %d" name depth;
        (* operand arrays are the contiguous blocks the implicit
           indexing promises *)
        Array.iteri
          (fun k id ->
            if id <> i.Im.a_base + k then
              Alcotest.failf "%s: a_in not contiguous at depth %d" name depth)
          e.Cd.a_in;
        Array.iteri
          (fun k id ->
            if id <> i.Im.b_base + k then
              Alcotest.failf "%s: b_in not contiguous at depth %d" name depth)
          e.Cd.b_in;
        Array.iteri
          (fun pos id ->
            if id <> Im.out_entry imp i pos then
              Alcotest.failf "%s: out entry mismatch at depth %d pos %d" name
                depth pos)
          e.Cd.out)
      enodes inodes
  done;
  (* Lemma 2.2 selections for every valid r *)
  let rec each_r r =
    if r <= n then begin
      (match Im.depth_of_r imp ~r with
      | None -> Alcotest.failf "%s: depth_of_r %d missing" name r
      | Some _ -> ());
      let e_out = List.sort compare (Cd.sub_outputs cd ~r) in
      let i_out = List.sort compare (Im.sub_outputs imp ~r) in
      check int_l (Printf.sprintf "%s V_out r=%d" name r) e_out i_out;
      check Alcotest.int
        (Printf.sprintf "%s |V_out| r=%d" name r)
        (List.length e_out)
        (Im.sub_output_count imp ~r);
      let e_in = List.sort compare (Cd.sub_inputs cd ~r) in
      let i_in = List.sort compare (Im.sub_inputs imp ~r) in
      check int_l (Printf.sprintf "%s V_inp r=%d" name r) e_in i_in;
      check Alcotest.int
        (Printf.sprintf "%s |V_inp| r=%d" name r)
        (List.length e_in)
        (Im.sub_input_count imp ~r);
      (* the streaming membership predicate *)
      let mask = Array.make (Cd.n_vertices cd) false in
      List.iter (fun v -> mask.(v) <- true) e_out;
      for v = 0 to Cd.n_vertices cd - 1 do
        if Im.is_sub_output imp ~r v <> mask.(v) then
          Alcotest.failf "%s: is_sub_output r=%d mismatch at %d" name r v
      done;
      each_r (r * n0)
    end
  in
  (* valid sub-problem sizes start at the hybrid leaf size *)
  if n > 1 then each_r (Cd.cutoff cd)

let test_nodes () = List.iter (fun (alg, n) -> check_nodes alg n) square_cases

(* --- hybrid (cutoff > 1) CDAGs: the classical base sub-CDAGs of PR 9
   must decode identically through the implicit offset tables --- *)

let test_hybrid_structure () =
  List.iter (fun (alg, n, c) -> check_structure ~cutoff:c alg n) hybrid_cases

let test_hybrid_to_explicit () =
  List.iter (fun (alg, n, c) -> check_to_explicit ~cutoff:c alg n) hybrid_cases

let test_hybrid_nodes () =
  List.iter (fun (alg, n, c) -> check_nodes ~cutoff:c alg n) hybrid_cases

let test_of_cdag_keeps_cutoff () =
  (* regression: of_cdag used to drop the hybrid cutoff, silently
     re-reading every hybrid CDAG as the uniform fast one *)
  List.iter
    (fun (alg, n, c) ->
      let cd = Cd.build ~cutoff:c alg ~n in
      let imp = Im.of_cdag cd in
      check Alcotest.int (case_name ~cutoff:c alg n ^ " of_cdag cutoff") c
        (Im.cutoff imp);
      check Alcotest.int
        (case_name ~cutoff:c alg n ^ " of_cdag vertices")
        (Cd.n_vertices cd) (Im.n_vertices imp))
    hybrid_cases

(* --- seeded random sub-problem / adjacency queries --- *)

let test_random_queries () =
  let rng = P.create ~seed:0xC0FFEE in
  List.iter
    (fun (alg, n) ->
      let name = case_name alg n in
      let cd = Cd.build alg ~n in
      let imp = Im.of_cdag cd in
      let g = Cd.graph cd in
      let nv = Cd.n_vertices cd in
      for _ = 1 to 64 do
        let v = P.int rng nv in
        if Cd.role cd v <> Im.role imp v then
          Alcotest.failf "%s: random role mismatch at %d" name v;
        if List.rev (List.map fst (Im.preds imp v)) <> D.in_neighbors g v then
          Alcotest.failf "%s: random preds mismatch at %d" name v;
        if Im.succs imp v <> List.rev (D.out_neighbors g v) then
          Alcotest.failf "%s: random succs mismatch at %d" name v;
        (* reciprocity *)
        List.iter
          (fun (p, _) ->
            if not (List.mem v (Im.succs imp p)) then
              Alcotest.failf "%s: pred %d of %d not reciprocated" name p v)
          (Im.preds imp v)
      done;
      (* random root-to-node paths *)
      let t_rank = A.rank alg in
      for _ = 1 to 16 do
        let depth = P.int rng (Im.levels imp + 1) in
        let path = Array.init depth (fun _ -> P.int rng t_rank) in
        let nd = Im.node_of_path imp path in
        (* lexicographic digit rank = position in the lo-sorted bucket *)
        let rank = Array.fold_left (fun acc d -> (acc * t_rank) + d) 0 path in
        let bucket = Cd.nodes_at_depth cd ~depth in
        let e = List.nth bucket rank in
        if e.Cd.subtree_lo <> nd.Im.lo || e.Cd.subtree_hi <> nd.Im.hi then
          Alcotest.failf "%s: node_of_path mismatch at depth %d" name depth
      done;
      (* random CSR windows *)
      for _ = 1 to 8 do
        let lo = P.int rng nv in
        let hi = min nv (lo + 1 + P.int rng 64) in
        let csr = Im.csr_preds imp ~lo ~hi in
        for v = lo to hi - 1 do
          let row =
            List.init
              (csr.Im.row_off.(v - lo + 1) - csr.Im.row_off.(v - lo))
              (fun k -> csr.Im.cols.(csr.Im.row_off.(v - lo) + k))
          in
          if row <> List.map fst (Im.preds imp v) then
            Alcotest.failf "%s: csr row mismatch at %d" name v
        done
      done)
    square_cases

(* --- rejections --- *)

let test_rejects () =
  List.iter
    (fun alg ->
      if not (is_square alg) then
        match Im.create alg ~n:4 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.failf "%s: non-square base accepted" (A.name alg))
    S.registry;
  (match Im.create strassen ~n:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=3 accepted for a 2x2 base");
  match Im.create strassen ~n:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=0 accepted"

(* --- streaming LRU executor vs Schedulers.run_lru --- *)

let ascending_order imp =
  List.init
    (Im.n_vertices imp - Im.n_inputs imp)
    (fun i -> Im.n_inputs imp + i)

let max_in_degree cd =
  let g = Cd.graph cd in
  let m = ref 0 in
  for v = 0 to Cd.n_vertices cd - 1 do
    m := max !m (D.in_degree g v)
  done;
  !m

let test_stream_lru () =
  List.iter
    (fun ((alg, n), m) ->
      let name = Printf.sprintf "%s M=%d" (case_name alg n) m in
      let cd = Cd.build alg ~n in
      let imp = Im.of_cdag cd in
      let work = W.of_cdag cd in
      let er = Sch.run_lru work ~cache_size:m (ascending_order imp) in
      let ir = SE.run_lru_collect imp ~cache_size:m in
      if er.Sch.counters <> ir.Sch.counters then
        Alcotest.failf "%s: counters differ (%s vs %s)" name
          (Format.asprintf "%a" Fmm_machine.Trace.pp_counters er.Sch.counters)
          (Format.asprintf "%a" Fmm_machine.Trace.pp_counters ir.Sch.counters);
      if er.Sch.trace <> ir.Sch.trace then begin
        let rec first_diff i a b =
          match (a, b) with
          | x :: a', y :: b' ->
            if x = y then first_diff (i + 1) a' b'
            else
              Alcotest.failf "%s: traces diverge at event %d (%s vs %s)" name i
                (Fmm_machine.Trace.event_to_string x)
                (Fmm_machine.Trace.event_to_string y)
          | [], _ | _, [] ->
            Alcotest.failf "%s: traces have different lengths at %d" name i
        in
        first_diff 0 er.Sch.trace ir.Sch.trace
      end)
    (List.concat_map
       (fun (alg, n) ->
         (* the scheduler needs room for all pinned operands plus the
            result; derive the floor from the real max in-degree *)
         let floor = max_in_degree (Cd.build alg ~n) + 1 in
         [ ((alg, n), floor); ((alg, n), floor + 24) ])
       (List.filter (fun (_, n) -> n > 1 && n <= 16) square_cases))

(* --- streaming MAXLIVE vs order_liveness --- *)

let test_maxlive () =
  List.iter
    (fun (alg, n) ->
      let name = case_name alg n in
      let cd = Cd.build alg ~n in
      let imp = Im.of_cdag cd in
      let work = W.of_cdag cd in
      let order = Array.of_list (ascending_order imp) in
      let lv = Df.order_liveness work order in
      let s = Df.implicit_order_liveness imp in
      check Alcotest.int (name ^ " maxlive") lv.Df.maxlive s.Df.Streamed.maxlive;
      check Alcotest.int (name ^ " inputs_used") lv.Df.inputs_used
        s.Df.Streamed.inputs_used;
      check Alcotest.int (name ^ " outputs_stored") lv.Df.outputs_stored
        s.Df.Streamed.outputs_stored;
      check Alcotest.int (name ^ " length") (Array.length order)
        s.Df.Streamed.length;
      List.iter
        (fun m ->
          check Alcotest.int
            (Printf.sprintf "%s io bound M=%d" name m)
            (Df.io_lower_bound lv ~cache_size:m)
            (Df.streamed_io_lower_bound s ~cache_size:m))
        [ 4; 16; 64 ])
    (List.filter (fun (_, n) -> n <= 16) square_cases)

(* --- streaming segment analysis vs Segments.analyze --- *)

let test_segments () =
  List.iter
    (fun ((alg, n), m, r) ->
      let name = Printf.sprintf "%s M=%d r=%d" (case_name alg n) m r in
      let cd = Cd.build alg ~n in
      let imp = Im.of_cdag cd in
      let work = W.of_cdag cd in
      let er = Sch.run_lru work ~cache_size:m (ascending_order imp) in
      let ea = Seg.analyze cd ~cache_size:m ~r er.Sch.trace in
      let ia, ic = Seg.analyze_implicit imp ~cache_size:m ~r () in
      if ea <> ia then Alcotest.failf "%s: segment analyses differ" name;
      if er.Sch.counters <> ic then
        Alcotest.failf "%s: segment counters differ" name;
      (* explicit quota too *)
      let ea' = Seg.analyze cd ~cache_size:m ~r ~quota:16 er.Sch.trace in
      let ia', _ = Seg.analyze_implicit imp ~cache_size:m ~r ~quota:16 () in
      if ea' <> ia' then Alcotest.failf "%s: quota-16 analyses differ" name)
    [
      ((strassen, 8), 8, 2);
      ((strassen, 8), 8, 4);
      ((strassen, 16), 16, 4);
      ((List.find (fun a -> A.name a = "Winograd") S.registry, 8), 8, 2);
    ]

(* --- BFS assignment parity --- *)

let test_bfs_assignment () =
  List.iter
    (fun ((alg, n), depth, procs) ->
      let name = Printf.sprintf "%s depth=%d procs=%d" (case_name alg n) depth procs in
      let cd = Cd.build alg ~n in
      let imp = Im.of_cdag cd in
      let e = Pe.bfs_assignment cd ~depth ~procs in
      let i = Pe.bfs_assignment_implicit imp ~depth ~procs in
      check int_l name (Array.to_list e) (Array.to_list i))
    [
      ((strassen, 8), 0, 3);
      ((strassen, 8), 1, 3);
      ((strassen, 8), 2, 7);
      ((strassen, 16), 1, 7);
      ((strassen, 16), 2, 3);
    ]

let test_bfs_assignment_hybrid () =
  (* entry-for-entry agreement on hybrid CDAGs over registry x cutoffs,
     at every recursion depth the hybrid tree still has *)
  List.iter
    (fun (alg, n, c) ->
      let cd = Cd.build ~cutoff:c alg ~n in
      let imp = Im.of_cdag cd in
      for depth = 0 to Im.levels imp do
        List.iter
          (fun procs ->
            let name =
              Printf.sprintf "%s depth=%d procs=%d"
                (case_name ~cutoff:c alg n)
                depth procs
            in
            let e = Pe.bfs_assignment cd ~depth ~procs in
            let i = Pe.bfs_assignment_implicit imp ~depth ~procs in
            check int_l name (Array.to_list e) (Array.to_list i))
          [ 3; 7 ]
      done)
    hybrid_cases

(* --- implicit lint is clean on well-formed CDAGs --- *)

let test_lint_implicit () =
  List.iter
    (fun (alg, n) ->
      let report = Lint.lint_implicit ~samples:512 (Im.create alg ~n) in
      if not (Dg.is_clean report) then
        Alcotest.failf "%s: implicit lint found problems:\n%s" (case_name alg n)
          (Dg.render report))
    (List.filter (fun (_, n) -> n > 1 && n <= 64) square_cases
    @ [ (strassen, 64) ])

(* --- closed-form censuses at a scale the explicit builder cannot reach --- *)

let test_large_census () =
  let imp = Im.create strassen ~n:256 in
  (* V(n) = 2 n^2 + S with S(d) from the chunk recurrence; the known
     values pin the arithmetic at depth 8 *)
  check Alcotest.int "n=256 inputs" (2 * 256 * 256) (Im.n_inputs imp);
  check Alcotest.int "n=256 mult census" (Fmm_util.Combinat.pow_int 7 8)
    (List.assoc "mult" (Im.stats imp));
  check Alcotest.int "n=256 outputs" (256 * 256)
    (List.assoc "outputs" (Im.stats imp));
  check Alcotest.int "n=256 |V_out(root)|" (256 * 256)
    (Im.sub_output_count imp ~r:256);
  (* Lemma 2.2 at r = 128: (n/r)^{log2 7} r^2 = 7 * 128^2 *)
  check Alcotest.int "n=256 |V_out| r=128" (7 * 128 * 128)
    (Im.sub_output_count imp ~r:128);
  (* ascending-id topological property on a sampled window *)
  let nv = Im.n_vertices imp in
  let stride = nv / 1024 in
  let v = ref (Im.n_inputs imp) in
  while !v < nv do
    Im.iter_preds imp !v ~f:(fun p _ ->
        if p >= !v then Alcotest.failf "edge not ascending at %d" !v);
    v := !v + stride
  done

let () =
  Alcotest.run "fmm_implicit"
    [
      ( "differential",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "to_explicit" `Quick test_to_explicit;
          Alcotest.test_case "nodes + Lemma 2.2" `Quick test_nodes;
          Alcotest.test_case "random queries" `Quick test_random_queries;
          Alcotest.test_case "rejections" `Quick test_rejects;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "structure" `Quick test_hybrid_structure;
          Alcotest.test_case "to_explicit" `Quick test_hybrid_to_explicit;
          Alcotest.test_case "nodes + Lemma 2.2" `Quick test_hybrid_nodes;
          Alcotest.test_case "of_cdag keeps cutoff" `Quick
            test_of_cdag_keeps_cutoff;
          Alcotest.test_case "BFS assignment parity" `Quick
            test_bfs_assignment_hybrid;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "LRU trace parity" `Quick test_stream_lru;
          Alcotest.test_case "MAXLIVE parity" `Quick test_maxlive;
          Alcotest.test_case "segment parity" `Quick test_segments;
          Alcotest.test_case "BFS assignment parity" `Quick test_bfs_assignment;
          Alcotest.test_case "implicit lint" `Quick test_lint_implicit;
        ] );
      ( "scale",
        [ Alcotest.test_case "n=256 censuses" `Quick test_large_census ] );
    ]
