(* Tests for fmm_par (the fixed-size domain pool) and the determinism
   contract it underwrites: a pool [map] is observationally a [List.map]
   at every [jobs], so the lemma battery and the experiment registry
   must emit byte-identical reports whether run sequentially or fanned
   out on domains. *)

module Pool = Fmm_par.Pool
module Exp = Fmm_obs.Experiment
module Sink = Fmm_obs.Sink
module Json = Fmm_obs.Json
module E = Fmm_lemmas.Engine
module S = Fmm_bilinear.Strassen

(* --- pool semantics --- *)

let test_pool_order_preserved () =
  let xs = List.init 100 (fun i -> i) in
  let expected = List.map (fun x -> (x * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs (fun x -> (x * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let test_pool_jobs_exceed_length () =
  (* more workers than tasks is harmless: spawns at most |list| - 1 *)
  Alcotest.(check (list int)) "jobs > length" [ 2; 4; 6 ]
    (Pool.map ~jobs:16 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map ~jobs:4 (fun x -> x * x) [ 3 ]);
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Fmm_par.Pool.map: jobs < 1")
    (fun () -> ignore (Pool.map ~jobs:0 (fun x -> x) [ 1 ]))

let test_pool_exception_first_index () =
  (* several tasks fail; map re-raises the one with the smallest index,
     independently of which domain hit its failure first *)
  let f x = if x mod 2 = 0 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "first failing index at jobs=%d" jobs)
        (Failure "2")
        (fun () -> ignore (Pool.map ~jobs f [ 1; 3; 2; 5; 4; 6 ])))
    [ 1; 4 ]

let test_pool_exception_runs_all_claimed () =
  (* a failure does not poison unrelated tasks: with jobs=1 the
     sequential path still raises, and the side effects before the
     failing index happened *)
  let hits = ref [] in
  (try
     ignore
       (Pool.map ~jobs:1
          (fun x ->
            hits := x :: !hits;
            if x = 3 then failwith "boom";
            x)
          [ 1; 2; 3; 4 ])
   with Failure _ -> ());
  Alcotest.(check (list int)) "prefix ran" [ 3; 2; 1 ] !hits

let test_jobs_from_env () =
  let var = "FMM_PAR_TEST_JOBS" in
  Unix.putenv var "3";
  Alcotest.(check int) "parses" 3 (Pool.jobs_from_env ~var ());
  Unix.putenv var "0";
  Alcotest.(check int) "rejects < 1" 1 (Pool.jobs_from_env ~var ());
  Unix.putenv var "not-a-number";
  Alcotest.(check int) "rejects junk" 1 (Pool.jobs_from_env ~var ());
  Unix.putenv var "8";
  Alcotest.(check int) "custom default unused" 8
    (Pool.jobs_from_env ~var ~default:2 ());
  Alcotest.(check int) "unset -> default" 5
    (Pool.jobs_from_env ~var:"FMM_PAR_TEST_UNSET" ~default:5 ())

(* --- differential determinism: lemma battery --- *)

let test_deep_check_jobs_invariant () =
  let r1 = E.deep_check_algorithm ~n:4 ~trials:3 ~seed:1 ~jobs:1 S.strassen in
  let r4 = E.deep_check_algorithm ~n:4 ~trials:3 ~seed:1 ~jobs:4 S.strassen in
  Alcotest.(check bool) "structurally equal" true (r1 = r4);
  Alcotest.(check string) "rendered reports byte-identical"
    (E.deep_report_to_string r1)
    (E.deep_report_to_string r4)

(* --- differential determinism: experiment registry --- *)

let report_string outcomes =
  (* strip the only legitimately run-dependent fields (wall clocks and
     [_s] timer scalars), pin [created], then serialize *)
  Json.to_string ~indent:2
    (Sink.report_to_json ~generator:"test_par" ~created:0.
       (List.map Sink.strip_volatile outcomes))

let registry_minus_perf () =
  (* PERF rows are bechamel timings — nondeterministic by nature, and
     already excluded from the determinism contract *)
  List.filter
    (fun e -> Exp.id e <> "PERF")
    (Fmm_experiments.Experiments.all ())

let test_registry_jobs_invariant () =
  let es = registry_minus_perf () in
  let seq = Fmm_experiments.Experiments.run_selected ~jobs:1 es in
  let par = Fmm_experiments.Experiments.run_selected ~jobs:4 es in
  Alcotest.(check int) "same cardinality" (List.length seq) (List.length par);
  Alcotest.(check string) "schema-v1 JSON byte-identical at jobs 1 vs 4"
    (report_string seq) (report_string par)

let () =
  Alcotest.run "fmm_par"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order_preserved;
          Alcotest.test_case "jobs > length" `Quick test_pool_jobs_exceed_length;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "exception = first index" `Quick
            test_pool_exception_first_index;
          Alcotest.test_case "sequential side effects" `Quick
            test_pool_exception_runs_all_claimed;
          Alcotest.test_case "jobs_from_env" `Quick test_jobs_from_env;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "deep_check jobs-invariant" `Quick
            test_deep_check_jobs_invariant;
          Alcotest.test_case "registry jobs-invariant" `Slow
            test_registry_jobs_invariant;
        ] );
    ]
