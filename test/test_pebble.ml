(* Tests for fmm_pebble: legality of the exact solver on hand-checked
   instances, the with/without-recomputation comparison — including the
   engineered Savage-style DAG where recomputation strictly helps, and
   Strassen-fragment instances where it does not. *)

module Pb = Fmm_pebble.Pebble
module Pd = Fmm_pebble.Pebble_dags
module D = Fmm_graph.Digraph
module S = Fmm_bilinear.Strassen
module Cd = Fmm_cdag.Cdag

(* --- hand-checked tiny instances --- *)

let chain_game len red_limit =
  (* x -> v1 -> ... -> v_{len} (output) *)
  let g = D.create () in
  let ids = D.add_vertices g (len + 1) in
  for i = 0 to len - 1 do
    D.add_edge g ids.(i) ids.(i + 1)
  done;
  Pb.make ~graph:g ~inputs:[ ids.(0) ] ~outputs:[ ids.(len) ] ~red_limit

let test_chain_optimal () =
  (* a chain needs exactly: 1 load + 1 store, any red_limit >= 2 *)
  List.iter
    (fun len ->
      match Pb.min_io (chain_game len 2) ~allow_recompute:true with
      | Some io -> Alcotest.(check int) (Printf.sprintf "chain %d" len) 2 io
      | None -> Alcotest.fail "search exhausted")
    [ 1; 3; 6 ]

let test_single_binary_node () =
  (* o = f(x, y): load x, load y, compute, store = 3 I/O, needs limit 3 *)
  let g = D.create () in
  let ids = D.add_vertices g 3 in
  D.add_edge g ids.(0) ids.(2);
  D.add_edge g ids.(1) ids.(2);
  let game = Pb.make ~graph:g ~inputs:[ ids.(0); ids.(1) ] ~outputs:[ ids.(2) ] ~red_limit:3 in
  (match Pb.min_io game ~allow_recompute:false with
  | Some io -> Alcotest.(check int) "binary node" 3 io
  | None -> Alcotest.fail "exhausted");
  (* with red_limit 2 the compute can never fire: unsolvable *)
  let stuck = Pb.make ~graph:g ~inputs:[ ids.(0); ids.(1) ] ~outputs:[ ids.(2) ] ~red_limit:2 in
  Alcotest.(check (option int)) "limit 2 unsolvable" None
    (Pb.min_io ~max_states:50_000 stuck ~allow_recompute:true)

let test_diamond_optimal () =
  (* x -> a, x -> b, (a,b) -> o: loads x, compute a,b, o, store o.
     red_limit 3: x,a then b needs x: keep x: {x,a,b} full, compute o
     needs slot -> delete x: {a,b,o}. I/O = 1 load + 1 store = 2. *)
  let g = D.create () in
  let ids = D.add_vertices g 4 in
  D.add_edge g ids.(0) ids.(1);
  D.add_edge g ids.(0) ids.(2);
  D.add_edge g ids.(1) ids.(3);
  D.add_edge g ids.(2) ids.(3);
  let game = Pb.make ~graph:g ~inputs:[ ids.(0) ] ~outputs:[ ids.(3) ] ~red_limit:3 in
  (match Pb.min_io game ~allow_recompute:false with
  | Some io -> Alcotest.(check int) "diamond" 2 io
  | None -> Alcotest.fail "exhausted")

let test_make_validation () =
  let g = D.create () in
  let ids = D.add_vertices g 2 in
  D.add_edge g ids.(0) ids.(1);
  Alcotest.check_raises "bad red limit" (Invalid_argument "Pebble.make: red_limit < 1")
    (fun () -> ignore (Pb.make ~graph:g ~inputs:[ ids.(0) ] ~outputs:[ ids.(1) ] ~red_limit:0));
  Alcotest.check_raises "input with preds"
    (Invalid_argument "Pebble.make: input with predecessors") (fun () ->
      ignore (Pb.make ~graph:g ~inputs:[ ids.(1) ] ~outputs:[ ids.(1) ] ~red_limit:2))

(* --- recomputation comparisons --- *)

let test_recomputation_strictly_helps_on_savage_dag () =
  let game = Pd.recomputation_wins () in
  let with_rc, without_rc = Pb.compare_recomputation game in
  match (with_rc, without_rc) with
  | Some w, Some wo ->
    Alcotest.(check bool)
      (Printf.sprintf "with (%d) < without (%d)" w wo)
      true (w < wo)
  | _ -> Alcotest.fail "search exhausted"

let test_recomputation_useless_on_encoder () =
  (* Strassen's encoder graph: every encoded operand is a sum of fresh
     inputs; recomputation cannot save I/O. *)
  List.iter
    (fun red_limit ->
      let game = Pd.encoder_game S.strassen Fmm_cdag.Encoder.A_side ~red_limit in
      let with_rc, without_rc = Pb.compare_recomputation game in
      match (with_rc, without_rc) with
      | Some w, Some wo ->
        Alcotest.(check int) (Printf.sprintf "limit %d equal" red_limit) wo w
      | _ -> Alcotest.fail "search exhausted")
    [ 3; 5 ]

let test_recomputation_useless_on_strassen_fragment () =
  (* ancestor closure of C21 = M2 + M4 of H^{2x2}: 11 vertices
     (4 inputs, 4 encoder vertices, 2 products, 1 decoder). *)
  let cdag = Cd.build S.strassen ~n:2 in
  let c21 = (Cd.outputs cdag).(2) in
  let game = Pd.of_cdag_outputs cdag ~outputs:[ c21 ] ~red_limit:4 in
  let with_rc, without_rc =
    Pb.compare_recomputation ~max_states:1_500_000 game
  in
  match (with_rc, without_rc) with
  | Some w, Some wo ->
    Alcotest.(check int) "equal optima on C21 fragment" wo w;
    (* 4 compulsory loads + 1 compulsory store at least *)
    Alcotest.(check bool) "cost sane" true (w >= 5)
  | _ -> Alcotest.fail "exact solver exhausted its state budget"

let test_with_recompute_never_worse () =
  (* on any instance, allowing recomputation can only help *)
  List.iter
    (fun seed ->
      let g, inputs, outputs = Pd.random_dag ~seed ~layers:3 ~width:3 ~density:0.4 in
      let game = Pb.make ~graph:g ~inputs ~outputs ~red_limit:4 in
      match Pb.compare_recomputation ~max_states:400_000 game with
      | Some w, Some wo ->
        Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (w <= wo)
      | _ -> () (* exhausted: skip *))
    [ 1; 2; 3; 4; 5 ]

let test_more_red_never_hurts () =
  (* Winograd's S4 operand sums 4 inputs: computing it needs 5 red
     pebbles, so the game is solvable only for red_limit >= 5. *)
  let game l = Pd.encoder_game S.winograd Fmm_cdag.Encoder.A_side ~red_limit:l in
  let io l =
    match Pb.min_io (game l) ~allow_recompute:true with
    | Some x -> x
    | None -> Alcotest.fail "exhausted"
  in
  Alcotest.(check bool) "io(5) >= io(6)" true (io 5 >= io 6);
  Alcotest.(check bool) "io(6) >= io(8)" true (io 6 >= io 8);
  (* with red = all vertices, I/O = compulsory: 4 loads + 7 stores *)
  Alcotest.(check int) "compulsory" 11 (io 11);
  (* below the operand width the game is unsolvable *)
  Alcotest.(check (option int)) "limit 4 unsolvable" None
    (Pb.min_io ~max_states:300_000 (game 4) ~allow_recompute:true)

(* --- static analyzer cross-check --- *)

let test_instances_pass_lint () =
  (* every pebbling instance the suite plays is a well-formed workload
     under the static analyzer's DAG hygiene pass *)
  let module Lint = Fmm_analysis.Cdag_lint in
  let module Dg = Fmm_analysis.Diagnostic in
  let module W = Fmm_machine.Workload in
  let lint name (game : Pb.game) ~silent =
    let w =
      W.make ~name ~graph:game.Pb.graph
        ~inputs:(Array.of_list game.Pb.inputs)
        ~outputs:(Array.of_list game.Pb.outputs)
        ()
    in
    let r = Lint.lint_workload w in
    Alcotest.(check int) (name ^ ": zero errors") 0 (Dg.n_errors r);
    if silent then
      Alcotest.(check int) (name ^ ": zero diagnostics") 0
        (List.length r.Dg.diags)
  in
  lint "chain" (chain_game 4 2) ~silent:true;
  lint "savage" (Pd.recomputation_wins ()) ~silent:true;
  lint "encoder"
    (Pd.encoder_game S.strassen Fmm_cdag.Encoder.A_side ~red_limit:3)
    ~silent:true;
  let cdag = Cd.build S.strassen ~n:2 in
  lint "c21 fragment"
    (Pd.of_cdag_outputs cdag ~outputs:[ (Cd.outputs cdag).(2) ] ~red_limit:4)
    ~silent:true;
  (* random DAGs may contain useless vertices (warnings), never errors *)
  List.iter
    (fun seed ->
      let g, inputs, outputs = Pd.random_dag ~seed ~layers:3 ~width:3 ~density:0.4 in
      lint
        (Printf.sprintf "random %d" seed)
        (Pb.make ~graph:g ~inputs ~outputs ~red_limit:4)
        ~silent:false)
    [ 1; 2; 3; 4; 5 ]

let test_size_guard () =
  let cdag = Cd.build S.strassen ~n:2 in
  Alcotest.check_raises "full H^{2x2} too large"
    (Invalid_argument "Pebble.make: graph too large for exact search (> 30)")
    (fun () ->
      ignore
        (Pd.of_cdag_outputs cdag
           ~outputs:(Array.to_list (Cd.outputs cdag))
           ~red_limit:4))

let () =
  Alcotest.run "fmm_pebble"
    [
      ( "exact",
        [
          Alcotest.test_case "chain" `Quick test_chain_optimal;
          Alcotest.test_case "binary node" `Quick test_single_binary_node;
          Alcotest.test_case "diamond" `Quick test_diamond_optimal;
          Alcotest.test_case "validation" `Quick test_make_validation;
        ] );
      ( "recomputation",
        [
          Alcotest.test_case "savage separation" `Slow
            test_recomputation_strictly_helps_on_savage_dag;
          Alcotest.test_case "encoder: useless" `Quick
            test_recomputation_useless_on_encoder;
          Alcotest.test_case "strassen fragment" `Slow
            test_recomputation_useless_on_strassen_fragment;
          Alcotest.test_case "never worse" `Quick test_with_recompute_never_worse;
          Alcotest.test_case "monotone in red" `Quick test_more_red_never_hurts;
          Alcotest.test_case "instances pass lint" `Quick test_instances_pass_lint;
          Alcotest.test_case "size guard" `Quick test_size_guard;
        ] );
    ]
