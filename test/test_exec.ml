(* Tests for Fmm_exec: the float64 kernels (blocked vs naive, recursive
   fast MM vs Apply's flop accounting) and the trace-interpreting
   executor — executed results vs classical MM over Zp / Rat / float64,
   executed counters vs the word-counting simulators (scheduler
   counters AND an independent Cache_machine replay), execution of
   hybrid and optimizer-found schedules, trace-legality rejection, the
   NE1 registry experiment's --jobs byte-identity, and the fmmlab CLI's
   degenerate-config exit-2 contract. *)

module K = Fmm_exec.Kernel
module Ex = Fmm_exec.Executor
module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module Cd = Fmm_cdag.Cdag
module W = Fmm_machine.Workload
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module CM = Fmm_machine.Cache_machine
module Prng = Fmm_util.Prng
module Exp = Fmm_obs.Experiment
module Sink = Fmm_obs.Sink
module Json = Fmm_obs.Json

(* --- kernels --- *)

let random_mat seed n =
  let rng = Prng.create ~seed in
  K.random rng n

let test_blocked_vs_naive () =
  (* edge cases on purpose: below one micro-tile, below one panel, off
     panel/micro-tile boundaries, above one panel *)
  List.iter
    (fun n ->
      let a = random_mat (2 * n) n and b = random_mat ((2 * n) + 1) n in
      let reference = K.naive_mul a b in
      let err = K.rel_err (K.blocked_mul a b) ~reference in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d blocked ~ naive (err %.2e)" n err)
        true (err <= 1e-13);
      let err32 = K.rel_err (K.blocked_mul ~nb:32 a b) ~reference in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d nb=32 blocked ~ naive" n)
        true (err32 <= 1e-13))
    [ 1; 2; 3; 5; 8; 16; 63; 64; 65; 100; 130 ]

let test_fast_mul_result () =
  List.iter
    (fun (alg, n, cutoff) ->
      let a = random_mat n n and b = random_mat (n + 7) n in
      let reference = K.naive_mul a b in
      let c, _ = K.fast_mul ~cutoff alg a b in
      let err = K.rel_err c ~reference in
      Alcotest.(check bool)
        (Printf.sprintf "%s n=%d cutoff=%d fast ~ naive (err %.2e)"
           (A.name alg) n cutoff err)
        true (err <= 1e-12))
    [
      (S.strassen, 32, 8);
      (S.strassen, 64, 16);
      (S.winograd, 32, 4);
      (S.classical_2x2, 16, 2);
      (* not powers of the base dimension: the unified cutoff rule
         falls back to classical multiplication mid-recursion instead
         of raising *)
      (S.strassen, 12, 1);
      (S.strassen, 9, 1);
      (S.winograd, 24, 2);
    ]

(* fast_mul mirrors Apply.multiply's recursion guard and combine
   accounting exactly, so its flop counters must equal Apply_int's for
   the same algorithm and cutoff — the executor's arithmetic really is
   the algorithm the CDAG encodes. *)
let test_fast_mul_flops_vs_apply () =
  List.iter
    (fun (alg, n, cutoff) ->
      let rng = Prng.create ~seed:(100 + n) in
      let mi = Fmm_matrix.Matrix.I.random ~rng ~rows:n ~cols:n ~range:5 in
      let mi' = Fmm_matrix.Matrix.I.random ~rng ~rows:n ~cols:n ~range:5 in
      let _, apply = A.Apply_int.multiply ~cutoff alg mi mi' in
      let a = random_mat n n and b = random_mat (n + 1) n in
      let _, fl = K.fast_mul ~cutoff alg a b in
      Alcotest.(check int)
        (Printf.sprintf "%s n=%d cutoff=%d mults" (A.name alg) n cutoff)
        apply.A.Apply_int.mults fl.K.mults;
      Alcotest.(check int)
        (Printf.sprintf "%s n=%d cutoff=%d adds" (A.name alg) n cutoff)
        apply.A.Apply_int.adds fl.K.adds)
    [
      (S.strassen, 32, 8);
      (S.strassen, 16, 1);
      (S.winograd, 32, 4);
      (S.classical_2x2, 16, 4);
      (* the two implementations must agree on the classical fallback
         at sizes that are not powers of the base dimension too *)
      (S.strassen, 12, 1);
      (S.strassen, 9, 1);
      (S.winograd, 24, 2);
    ]

(* --- the executor: results and counters, all backends --- *)

let test_verify_all_policies () =
  List.iter
    (fun (alg, n, m) ->
      List.iter
        (fun policy ->
          let v =
            Ex.verify ~seed:3 ~backends:[ `F64; `Zp; `Rat; `Big ] alg ~n
              ~cache_size:m ~policy
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d M=%d %s: all backends ok" (A.name alg) n
               m (Ex.policy_to_string policy))
            true (Ex.verification_ok v);
          List.iter
            (fun r ->
              Alcotest.(check bool)
                (r.Ex.backend ^ " within fast-memory budget")
                true
                (r.Ex.peak_occupancy <= m))
            v.Ex.reports)
        Ex.all_policies)
    [ (S.strassen, 8, 32); (S.winograd, 8, 32); (S.strassen, 16, 64) ]

(* independent counter cross-check: the engine's recount must also
   equal what Cache_machine.replay says about the same trace *)
let test_counters_vs_cache_machine () =
  let alg = S.strassen and n = 8 and m = 32 in
  let cdag = Cd.build alg ~n in
  let workn = W.of_cdag cdag in
  List.iter
    (fun policy ->
      let sched = Ex.schedule cdag ~cache_size:m policy in
      let allow_recompute = policy = Ex.Remat in
      let replayed =
        CM.replay { CM.cache_size = m; allow_recompute } workn
          sched.Sch.trace
      in
      let r = Ex.run_backend cdag ~cache_size:m ~sched ~seed:5 `Zp in
      Alcotest.(check bool)
        (Ex.policy_to_string policy ^ ": executed = replayed counters")
        true
        (r.Ex.executed = replayed);
      Alcotest.(check bool)
        (Ex.policy_to_string policy ^ ": executed = scheduled counters")
        true r.Ex.counters_ok)
    Ex.all_policies

let test_hybrid_and_optimizer_schedules () =
  let alg = S.strassen and n = 8 and m = 32 in
  let cdag = Cd.build alg ~n in
  let workn = W.of_cdag cdag in
  let order = Ord.recursive_dfs cdag in
  (* a genuine per-value mix *)
  let hybrid =
    Sch.run_hybrid workn ~cache_size:m ~recompute:(fun v -> v mod 3 = 0) order
  in
  let vh =
    Ex.verify_sched ~seed:9 ~backends:[ `F64; `Zp; `Rat ] cdag ~cache_size:m
      ~policy_name:"hybrid" hybrid
  in
  Alcotest.(check bool) "hybrid executes clean" true (Ex.verification_ok vh);
  (* the optimizer's best found schedule is just another trace *)
  let module O = Fmm_opt.Optimizer in
  let report =
    O.optimize_cdag cdag ~cache_size:m ~beam:2 ~iters:1 ~seed:1 ~jobs:1
  in
  let vo =
    Ex.verify_sched ~seed:9 ~backends:[ `F64; `Zp ] cdag ~cache_size:m
      ~policy_name:"optimizer" report.O.best.O.result
  in
  Alcotest.(check bool) "optimizer schedule executes clean" true
    (Ex.verification_ok vo)

(* determinism: same seed -> byte-identical report, different seed ->
   different operands but still clean *)
let test_seeded_determinism () =
  let v1 = Ex.verify ~seed:11 S.strassen ~n:8 ~cache_size:32 ~policy:Ex.Lru in
  let v2 = Ex.verify ~seed:11 S.strassen ~n:8 ~cache_size:32 ~policy:Ex.Lru in
  Alcotest.(check bool) "same seed, structurally equal" true (v1 = v2);
  let v3 = Ex.verify ~seed:12 S.strassen ~n:8 ~cache_size:32 ~policy:Ex.Lru in
  Alcotest.(check bool) "different seed still clean" true
    (Ex.verification_ok v3)

(* --- trace legality: the executor is also a checker --- *)

let test_rejects_corrupt_traces () =
  let alg = S.strassen and n = 4 and m = 16 in
  let cdag = Cd.build alg ~n in
  let sched = Ex.schedule cdag ~cache_size:m Ex.Lru in
  let a = Array.init (n * n) float_of_int in
  let b = Array.init (n * n) (fun i -> float_of_int (i + 1)) in
  let run trace = ignore (Ex.F64.run cdag ~cache_size:m ~a ~b trace) in
  (* the pristine trace is fine *)
  run sched.Sch.trace;
  let raises name trace =
    Alcotest.(check bool) name true
      (match run trace with
      | () -> false
      | exception Ex.Exec_error _ -> true)
  in
  (* drop the first load: some compute loses an operand *)
  let dropped = ref false in
  raises "missing load"
    (List.filter
       (fun e ->
         match e with
         | Tr.Load _ when not !dropped ->
           dropped := true;
           false
         | _ -> true)
       sched.Sch.trace);
  (* drop every evict: the fast-memory arena overflows *)
  raises "overflow"
    (List.filter (function Tr.Evict _ -> false | _ -> true) sched.Sch.trace);
  (* too-small word budget for the same trace *)
  Alcotest.(check bool) "shrunk budget" true
    (match
       Ex.F64.run cdag ~cache_size:(m - 1) ~a ~b sched.Sch.trace
     with
    | _ -> false
    | exception Ex.Exec_error _ -> true)

let test_validate_config () =
  let ok ?cutoff alg n = Ex.validate_config ?cutoff alg ~n = Ok () in
  Alcotest.(check bool) "strassen n=8" true (ok S.strassen 8);
  Alcotest.(check bool) "n=1 degenerate" false (ok S.strassen 1);
  Alcotest.(check bool) "n=12 not a power" false (ok S.strassen 12);
  Alcotest.(check bool) "rectangular base" false
    (ok (A.classical ~n:2 ~m:2 ~k:3) 4);
  (* the hybrid cutoff contract *)
  Alcotest.(check bool) "cutoff=4 ok" true (ok ~cutoff:4 S.strassen 8);
  Alcotest.(check bool) "cutoff=n ok" true (ok ~cutoff:8 S.strassen 8);
  Alcotest.(check bool) "cutoff=0 degenerate" false (ok ~cutoff:0 S.strassen 8);
  Alcotest.(check bool) "cutoff>n" false (ok ~cutoff:16 S.strassen 8);
  Alcotest.(check bool) "cutoff not a power" false (ok ~cutoff:3 S.strassen 8)

(* --- NE1 report byte-identity at --jobs 1 vs 4 --- *)

let test_ne1_jobs_invariant () =
  let es =
    List.filter
      (fun e -> Exp.id e = "NE1")
      (Fmm_experiments.Experiments.all ())
  in
  Alcotest.(check int) "NE1 registered" 1 (List.length es);
  let render outcomes =
    Json.to_string ~indent:2
      (Sink.report_to_json ~generator:"test_exec" ~created:0.
         (List.map Sink.strip_volatile outcomes))
  in
  let seq = Fmm_experiments.Experiments.run_selected ~jobs:1 es in
  let par = Fmm_experiments.Experiments.run_selected ~jobs:4 es in
  Alcotest.(check string) "NE1 byte-identical at jobs 1 vs 4" (render seq)
    (render par)

(* --- the CLI's exit-2 contract for degenerate configs --- *)

let fmmlab_exe =
  (* the (deps ../bin/fmmlab.exe) in test/dune puts the freshly built
     binary at this path relative to the test's cwd *)
  Filename.concat (Filename.concat ".." "bin") "fmmlab.exe"

let run_cli args =
  let cmd =
    Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote fmmlab_exe) args
  in
  match Unix.system cmd with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255

let test_cli_degenerate_exit2 () =
  if not (Sys.file_exists fmmlab_exe) then
    (* guard for odd cwd layouts; dune's deps make this unreachable *)
    Alcotest.skip ()
  else begin
    List.iter
      (fun args ->
        Alcotest.(check int) ("exit 2: " ^ args) 2 (run_cli args))
      [
        "exec -a Strassen -n 1 -m 64";
        "exec -a Strassen -n 12 -m 64";
        "exec -a \"classical <2,2,3;12>\" -n 4 -m 64";
        "exec -a Strassen -n 8 -m 32 --policy nosuch";
        "exec -a Strassen -n 8 -m 32 --backend nosuch";
        "census -a Strassen -n 1";
        "census -a \"classical <2,2,3;12>\" -n 4";
        (* hybrid cutoff contract: 0, > n and non-powers of the base
           dimension are degenerate for CDAG-building commands *)
        "exec -a Strassen -n 8 -m 32 --cutoff 0";
        "exec -a Strassen -n 8 -m 32 --cutoff 16";
        "exec -a Strassen -n 8 -m 32 --cutoff 3";
        "census -a Strassen -n 8 --cutoff 3";
        "census -a Strassen -n 8 --cutoff 16";
        "hybrid -a Strassen -n 8 -m 64 --cutoff 3";
      ];
    (* and healthy runs still exit 0 *)
    Alcotest.(check int) "exit 0: healthy exec" 0
      (run_cli "exec -a Strassen -n 8 -m 32 --backend zp65537");
    Alcotest.(check int) "exit 0: healthy hybrid exec" 0
      (run_cli "exec -a Strassen -n 8 -m 32 --cutoff 4 --backend zp65537");
    Alcotest.(check int) "exit 0: healthy hybrid census" 0
      (run_cli "census -a Strassen -n 8 --cutoff 4")
  end

let () =
  Alcotest.run "fmm_exec"
    [
      ( "kernel",
        [
          Alcotest.test_case "blocked vs naive" `Quick test_blocked_vs_naive;
          Alcotest.test_case "fast_mul result" `Quick test_fast_mul_result;
          Alcotest.test_case "fast_mul flops = Apply" `Quick
            test_fast_mul_flops_vs_apply;
        ] );
      ( "executor",
        [
          Alcotest.test_case "all policies x all backends" `Quick
            test_verify_all_policies;
          Alcotest.test_case "counters vs cache machine" `Quick
            test_counters_vs_cache_machine;
          Alcotest.test_case "hybrid + optimizer schedules" `Quick
            test_hybrid_and_optimizer_schedules;
          Alcotest.test_case "seeded determinism" `Quick
            test_seeded_determinism;
          Alcotest.test_case "rejects corrupt traces" `Quick
            test_rejects_corrupt_traces;
          Alcotest.test_case "validate_config" `Quick test_validate_config;
        ] );
      ( "registry",
        [
          Alcotest.test_case "NE1 jobs-invariant" `Quick
            test_ne1_jobs_invariant;
        ] );
      ( "cli",
        [
          Alcotest.test_case "degenerate configs exit 2" `Quick
            test_cli_degenerate_exit2;
        ] );
    ]
