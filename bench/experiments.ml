(* The experiment registry: every table and figure of the paper as a
   named experiment (see DESIGN.md's experiment index). Each experiment
   writes structured rows — params identify the data point, metrics
   carry what was measured — into an Fmm_obs.Metrics registry instead
   of printing; the sinks (Fmm_obs.Sink) render them as the classic
   ASCII tables, as BENCH_*.json, or as a baseline regression diff.

   Ids:
     T1      Table I lower bounds + simulator cross-check
     F1      Figure 1: the base CDAG census (+ DOT export)
     F2      Figure 2: encoder graphs and the Lemma 3.1-3.3 battery
     F3      Figure 3 / Lemma 3.11: disjoint-path counts vs the bound
     L36     Lemma 3.6: per-segment I/O of real schedules
     L37     Lemma 3.7: exact min dominators vs |Z|/2
     DEEP    the full Engine.deep_check_algorithm battery on the domain pool
     TH1seq  Theorem 1.1, sequential: measured I/O vs bound over (n, M)
     TH1par  Theorem 1.1, parallel: both regimes, crossover, executed BFS
     TH4     Theorem 4.1: alternative basis
     RC      recomputation: exact pebbling + rematerializing scheduler
     CO      leading coefficients 7 -> 6 -> 5
     HK      Hopcroft-Kerr checks and 6-mult search
     BS      basis search (Karstadt-Schwartz sparsity)
     L310    Lemma 3.10: disjoint-union undominated inputs
     FFT     Table I last row: butterfly CDAG
     LU      Section V conjecture: direct linear algebra
     WA      Section V: write-avoiding / NVM asymmetry
     OPT1    optimizer smoke: Strassen H^{8x8}, fixed seed, 2 iterations
     OPT2    optimizer at depth: Strassen H^{16x16} at M = 64
     OPT3    optimizer on the FFT butterfly (generic hot windows)
     AN1     certifier: static MAXLIVE / I/O lower bound vs measured policies
     AN2     incremental legality oracle vs full replay (byte-identical search)
     FT1     fault injection: fault-free parity with the plain executor
     FT2     fault injection: single-failure overhead per recovery policy
     FT3     fault injection: overhead vs failure count (recompute policy)
     IC1     implicit CDAG: censuses + streaming segment I/O at n = 256
     IC2     implicit CDAG: streaming MAXLIVE + exact bound arithmetic
     NE1     numeric executor: schedules run on real matrices vs predictions
     NE2     numeric kernels: Strassen-vs-classical float64 crossover sweep
     HY1     hybrid CDAGs: full lint/certify/execute battery per cutoff
     HY2     hybrid sweep: measured I/O vs De Stefani bounds, optimal cutoffs
     CS1     COSMA generator smoke: split vs BFS on Strassen n = 16 + grid search
     CS2     COSMA acceptance: splits vs BFS across (P, M), registry gate, faults
     PERF    bechamel kernel timings

   Rows carry a "ratio" metric wherever the paper compares a measured
   quantity against a bound; those are exactly the values `fmmlab bench
   --baseline` gates on. *)

module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module AB = Fmm_bilinear.Alt_basis
module MQ = Fmm_matrix.Matrix.Q
module MI = Fmm_matrix.Matrix.I
module Cd = Fmm_cdag.Cdag
module Enc = Fmm_cdag.Encoder
module EL = Fmm_lemmas.Encoder_lemmas
module HK = Fmm_lemmas.Hopcroft_kerr
module DL = Fmm_lemmas.Dominator_lemma
module PL = Fmm_lemmas.Paths_lemma
module B = Fmm_bounds.Bounds
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module Seg = Fmm_machine.Segments
module Par = Fmm_machine.Par_model
module PE = Fmm_machine.Par_exec
module Pb = Fmm_pebble.Pebble
module Pd = Fmm_pebble.Pebble_dags
module C = Fmm_util.Combinat
module Obs = Fmm_obs.Metrics
module Exp = Fmm_obs.Experiment

let i x = Obs.Int x
let f x = Obs.Float x
let s x = Obs.Str x
let mark ok = s (if ok then "ok" else "FAIL")

(* When `fmmlab bench --jobs N` runs experiments on the domain pool,
   bodies that fan out their own lemma samples (DEEP, L37) read the
   level from here; everything they produce is deterministic at any
   level, so this knob only moves wall clocks. *)
let inner_jobs = Atomic.make 1
let set_jobs n = Atomic.set inner_jobs (max 1 n)
let jobs () = Atomic.get inner_jobs

(* Cache built CDAGs/orders: several experiments reuse them. Keys are
   structural fingerprints, not display names — two algorithms sharing
   a name (e.g. basis-search variants of "Strassen") must never alias
   each other's CDAGs. The caches are the only state shared between
   experiment bodies, so they are mutex-guarded (experiments run
   concurrently under --jobs). The value is built outside the lock —
   builds are deterministic in the key, so a racing duplicate build is
   wasted work, never wrong results — and the first finished build
   wins. *)
let cache_lock = Mutex.create ()

let cached tbl key build =
  let found =
    Mutex.lock cache_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock cache_lock)
      (fun () -> Hashtbl.find_opt tbl key)
  in
  match found with
  | Some v -> v
  | None ->
    let v = build () in
    Mutex.lock cache_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock cache_lock)
      (fun () ->
        match Hashtbl.find_opt tbl key with
        | Some v' -> v'
        | None ->
          Hashtbl.replace tbl key v;
          v)

let cdag_cache : (string * int, Cd.t) Hashtbl.t = Hashtbl.create 8

let cdag alg n =
  cached cdag_cache (A.fingerprint alg, n) (fun () -> Cd.build alg ~n)

let order_cache : (string * int, int list) Hashtbl.t = Hashtbl.create 8

let dfs_order alg n =
  cached order_cache (A.fingerprint alg, n) (fun () ->
      Ord.recursive_dfs (cdag alg n))

let work alg n = Fmm_machine.Workload.of_cdag (cdag alg n)

let lru_io alg n m =
  Tr.io (Sch.run_lru (work alg n) ~cache_size:m (dfs_order alg n)).Sch.counters

let registry = Exp.Registry.create ()
let define = Exp.Registry.define registry

(* ----- T1: Table I ----- *)

let _t1 =
  define ~id:"T1" ~title:"Table I - known lower bounds"
    ~doc:"The Table I rows plus a simulator cross-check of the bounds."
    (fun m ->
      let section = "Table I rows (n=4096, M=4096, P=49)" in
      List.iter
        (fun row ->
          Obs.rowf m ~section
            ~params:[ ("algorithm", s row.B.algorithm) ]
            [
              ("omega0", f row.B.omega0);
              ("memdep", f (row.B.memdep ~n:4096 ~m:4096 ~p:49));
              ("memind", f (row.B.memind ~n:4096 ~p:49));
              ("no-recomp", s row.B.no_recomp_citations);
              ("with-recomp", s (B.recomputation_status_string row.B.with_recomp));
            ])
        B.table1_rows;
      Obs.rowf m ~section
        ~params:[ ("algorithm", s "Rectangular <2,2,3;11>, t=6") ]
        [
          ("omega0", f (A.omega0 (A.classical ~n:2 ~m:2 ~k:3)));
          ("memdep", f (B.rectangular ~m0:2 ~p0:3 ~q:11 ~t:6 ~m:4096 ~p:49));
          ("no-recomp", s "[22]");
          ("with-recomp", s "open");
        ];
      Obs.rowf m ~section
        ~params:[ ("algorithm", s "FFT") ]
        [
          ("memdep", f (B.fft_memdep ~n:4096 ~m:4096 ~p:49));
          ("memind", f (B.fft_memind ~n:4096 ~p:49));
          ("no-recomp", s "[12],[5],[11]");
          ("with-recomp", s "[13]");
        ];
      (* simulator cross-check: measured I/O of real schedules vs the
         corresponding bound; ratio must be >= 1 and roughly flat in M
         (same exponent). *)
      let section = "simulator cross-check (n=16, LRU on recursive order)" in
      List.iter
        (fun (alg, bound_fn) ->
          List.iter
            (fun mm ->
              let io = Obs.time m "simulate" (fun () -> lru_io alg 16 mm) in
              let bound = bound_fn ~m:mm in
              Obs.rowf m ~section
                ~params:[ ("algorithm", s (A.name alg)); ("M", i mm) ]
                [
                  ("measured", i io);
                  ("bound", f bound);
                  ("ratio", f (float_of_int io /. bound));
                ])
            [ 16; 64; 256 ])
        [
          (S.strassen, fun ~m -> B.fast_sequential ~n:16 ~m ());
          (S.classical_2x2, fun ~m -> B.classical_memdep ~n:16 ~m ~p:1);
        ])

(* ----- F1: Figure 1 ----- *)

let _f1 =
  define ~id:"F1" ~title:"Figure 1 - the CDAG of Strassen's base algorithm"
    (fun m ->
      let section = "H^{2x2} census per algorithm" in
      List.iter
        (fun alg ->
          let st = Cd.stats (cdag alg 2) in
          let g k = i (List.assoc k st) in
          Obs.rowf m ~section
            ~params:[ ("algorithm", s (A.name alg)) ]
            [
              ("vertices", g "vertices");
              ("edges", g "edges");
              ("inputs", g "inputs");
              ("encA", g "enc_a");
              ("encB", g "enc_b");
              ("mult", g "mult");
              ("dec", g "dec");
            ])
        [ S.strassen; S.winograd; AB.ks_core; S.classical_2x2 ];
      let dot = Cd.to_dot (cdag S.strassen 2) in
      let oc = open_out "fig1_strassen_base_cdag.dot" in
      output_string oc dot;
      close_out oc;
      Obs.gauge m "fig1_dot_bytes" (float_of_int (String.length dot));
      Obs.note m
        (Printf.sprintf "Figure 1 DOT written to fig1_strassen_base_cdag.dot (%d bytes)"
           (String.length dot));
      (* Lemma 2.2 check across sizes *)
      let section = "Lemma 2.2: |V_out(SUB_H^{rxr})| = (n/r)^{log2 7} r^2" in
      List.iter
        (fun n ->
          let l = C.log2_exact n in
          for j = 0 to l do
            let r = C.pow_int 2 j in
            Obs.rowf m ~section
              ~params:[ ("n", i n); ("r", i r) ]
              [
                ("measured", i (List.length (Cd.sub_outputs (cdag S.strassen n) ~r)));
                ("formula", i (C.pow_int 7 (l - j) * r * r));
              ]
          done)
        [ 4; 8 ])

(* ----- F2: Figure 2 ----- *)

let _f2 =
  define ~id:"F2" ~title:"Figure 2 - encoder graphs and Lemmas 3.1-3.3"
    (fun m ->
      let dot =
        Fmm_graph.Digraph.to_dot ~name:"EncA"
          (Enc.encoder_digraph S.strassen Enc.A_side)
      in
      let oc = open_out "fig2_strassen_encoder.dot" in
      output_string oc dot;
      close_out oc;
      Obs.note m "Figure 2 DOT written to fig2_strassen_encoder.dot";
      let section = "lemma battery (exhaustive over all 127 subsets Y')" in
      List.iter
        (fun alg ->
          List.iter
            (fun (side, side_name) ->
              let g = Enc.encoder_bipartite alg side in
              let chk r = mark r.EL.holds in
              Obs.rowf m ~section
                ~params:[ ("algorithm", s (A.name alg)); ("side", s side_name) ]
                [
                  ("3.1", chk (EL.check_lemma_3_1 g));
                  ("3.1-Hall", chk (EL.check_neighbor_count_bound g));
                  ("3.2", chk (EL.check_lemma_3_2 g));
                  ("3.3", chk (EL.check_lemma_3_3 g));
                ])
            [ (Enc.A_side, "A"); (Enc.B_side, "B") ])
        [ S.strassen; S.winograd; S.winograd_transposed; AB.ks_core; S.classical_2x2 ];
      Obs.note m
        "(classical <2,2,2;8> is the negative control: it is not a 7-multiplication";
      Obs.note m
        " algorithm and Lemmas 3.1/3.3 correctly fail on its encoder)";
      (* expansion profiles: the [8] route beside the Lemma 3.1 curve *)
      let section = "small-set expansion of encoder graphs (A side)" in
      List.iter
        (fun alg ->
          let p = Fmm_lemmas.Expansion.profile alg Enc.A_side in
          let ms =
            List.map (fun (_, _, mm, _) -> mm) (Fmm_lemmas.Expansion.rows p)
          in
          Obs.rowf m ~section
            ~params:[ ("algorithm", s (A.name alg)) ]
            (List.mapi (fun idx mm -> (Printf.sprintf "k=%d" (idx + 1), i mm)) ms
            @ [ ("lemma 3.1 curve", s "1,2,2,3,3,4,4") ]))
        [ S.strassen; S.winograd; AB.ks_core ];
      (* generality sweep: all {I,J}-conjugates of Strassen and Winograd *)
      let total = ref 0 and passed = ref 0 in
      List.iter
        (fun base ->
          List.iter
            (fun alg ->
              incr total;
              if (Fmm_lemmas.Engine.check_algorithm alg).Fmm_lemmas.Engine.all_ok
              then incr passed)
            (A.conjugates_2x2 base))
        [ S.strassen; S.winograd ];
      Obs.rowf m ~section:"de Groote conjugate sweep" ~params:[]
        [ ("passed", i !passed); ("total", i !total) ];
      Obs.note m
        (Printf.sprintf "generality: %d/%d de Groote conjugates pass the full battery"
           !passed !total))

(* ----- F3: Figure 3 / Lemma 3.11 ----- *)

let _f3 =
  define ~id:"F3" ~title:"Figure 3 / Lemma 3.11 - vertex-disjoint paths"
    (fun m ->
      let section =
        "max disjoint paths vs bound 2r*sqrt(|Z|-2|Gamma|) (Strassen CDAGs)"
      in
      List.iter
        (fun (n, r, zs) ->
          List.iter
            (fun (z, gamma) ->
              let smp =
                PL.sample (cdag S.strassen n) ~r ~z_size:z ~gamma_size:gamma
                  ~seed:(z + (3 * gamma))
              in
              Obs.rowf m ~section
                ~params:
                  [
                    ("n", i n);
                    ("r", i r);
                    ("|Z|", i smp.PL.z_size);
                    ("|Gamma|", i smp.PL.gamma_size);
                  ]
                [
                  ("paths", i smp.PL.disjoint_paths);
                  ("bound", f smp.PL.bound);
                  ("holds", mark smp.PL.holds);
                ])
            zs)
        [
          (4, 2, [ (4, 0); (8, 2); (12, 4); (16, 6) ]);
          (8, 2, [ (16, 0); (32, 8); (48, 16) ]);
          (8, 4, [ (16, 0); (32, 8) ]);
        ])

(* ----- L36: Lemma 3.6 segments ----- *)

let _l36 =
  define ~id:"L36" ~title:"Lemma 3.6 - per-segment I/O of real schedules"
    (fun m ->
      let section =
        "segments of 4M' first-time SUB-output computations (Strassen)"
      in
      let add n mm policy trace analysis_m r =
        let a = Seg.analyze (cdag S.strassen n) ~cache_size:analysis_m ~r trace in
        let fulls = List.length (Seg.full_segments a) in
        Obs.rowf m ~section
          ~params:
            [ ("n", i n); ("M", i mm); ("policy", s policy); ("r", i r) ]
          ([
             ("quota", i a.Seg.quota);
             ("full segs", i fulls);
           ]
          @ (match Seg.min_io_full_segments a with
            | Some x -> [ ("min seg I/O", i x) ]
            | None -> [])
          @ [
              ("bound", i a.Seg.bound);
              ("holds", mark (Seg.lemma_3_6_holds a));
            ])
      in
      let lru n mm =
        (Sch.run_lru (work S.strassen n) ~cache_size:mm (dfs_order S.strassen n)).Sch.trace
      in
      add 8 8 "LRU" (lru 8 8) 8 8;
      add 16 8 "LRU" (lru 16 8) 8 8;
      add 16 16 "LRU" (lru 16 16) 16 16;
      add 16 64 "LRU" (lru 16 64) 16 16;
      let rem n mm =
        (Sch.run_rematerialize (work S.strassen n) ~cache_size:mm (dfs_order S.strassen n)).Sch.trace
      in
      add 16 48 "remat" (rem 16 48) 48 16;
      Obs.note m "(bound = r^2/2 - M; a negative bound means the lemma is vacuous there,";
      Obs.note m " exactly as in the paper: it bites once r = 2 sqrt(M))")

(* ----- L37: Lemma 3.7 dominators ----- *)

let _l37 =
  define ~id:"L37" ~title:"Lemma 3.7 - exact minimum dominator sets"
    (fun m ->
      let section = "min dominator of random Z (|Z| = r^2) in H^{nxn}" in
      List.iter
        (fun (alg, n, r) ->
          let samples =
            Obs.time m "min_dominator" (fun () ->
                DL.sample_min_dominators ~jobs:(jobs ()) (cdag alg n) ~r
                  ~trials:8 ~seed:7)
          in
          let worst =
            List.fold_left (fun acc smp -> min acc smp.DL.min_dominator) max_int samples
          in
          Obs.rowf m ~section
            ~params:[ ("algorithm", s (A.name alg)); ("n", i n); ("r", i r) ]
            [
              ("samples", i (List.length samples));
              ("min |Gamma|", i worst);
              ("lemma bound", i (r * r / 2));
            ])
        [
          (S.strassen, 4, 2); (S.strassen, 4, 4); (S.strassen, 8, 2);
          (S.strassen, 8, 4); (S.winograd, 4, 2); (S.winograd, 4, 4);
          (AB.ks_core, 4, 2); (AB.ks_core, 4, 4);
        ])

(* ----- DEEP: the full lemma battery on the domain pool ----- *)

let _deep =
  define ~id:"DEEP"
    ~title:"deep lemma battery (Engine.deep_check_algorithm on the domain pool)"
    ~doc:
      "The Section III battery end to end per algorithm: encoder lemmas, the \
       Lemma 2.2 census, and the exact max-flow samples of Lemmas 3.7/3.11, \
       fanned out on the Fmm_par pool. Rows are identical at any --jobs; \
       only the deep_battery_s timer and the experiment wall clock move."
    (fun m ->
      let section = "Engine.deep_check_algorithm (per-sample derived seeds)" in
      List.iter
        (fun (alg, n, trials) ->
          let d =
            Obs.time m "deep_battery" (fun () ->
                Fmm_lemmas.Engine.deep_check_algorithm ~n ~trials ~seed:7
                  ~jobs:(jobs ()) alg)
          in
          let module Eng = Fmm_lemmas.Engine in
          let worst_dom =
            List.fold_left
              (fun acc smp -> min acc smp.DL.min_dominator)
              max_int d.Eng.lemma_3_7
          in
          let worst_paths =
            List.fold_left
              (fun acc smp -> min acc smp.PL.disjoint_paths)
              max_int d.Eng.lemma_3_11
          in
          Obs.rowf m ~section
            ~params:[ ("algorithm", s (A.name alg)); ("n", i n) ]
            [
              ("3.7 samples", i (List.length d.Eng.lemma_3_7));
              ("min |Gamma|", i worst_dom);
              ("3.11 samples", i (List.length d.Eng.lemma_3_11));
              ("min paths", i worst_paths);
              ("2.2", mark d.Eng.lemma_2_2_ok);
              ("deep ok", mark d.Eng.deep_ok);
            ])
        [
          (S.strassen, 16, 24); (S.winograd, 16, 24); (AB.ks_core, 4, 16);
          (S.classical_2x2, 4, 16);
        ];
      Obs.note m
        "(classical <2,2,2;8> flags deep ok = FAIL through its encoder lemmas,";
      Obs.note m
        " exactly as in F2 — its CDAG-level 3.7/3.11 samples still hold)")

(* ----- TH1seq ----- *)

let _th1seq =
  define ~id:"TH1seq"
    ~title:"Theorem 1.1 sequential - measured I/O vs (n/sqrt M)^w M"
    (fun m ->
      let section = "LRU + recursive order (Strassen)" in
      List.iter
        (fun n ->
          List.iter
            (fun mm ->
              let io = Obs.time m "simulate" (fun () -> lru_io S.strassen n mm) in
              let bound = B.fast_sequential ~n ~m:mm () in
              Obs.rowf m ~section
                ~params:[ ("n", i n); ("M", i mm) ]
                [
                  ("measured", i io);
                  ("bound", f bound);
                  ("ratio", f (float_of_int io /. bound));
                ])
            [ 16; 64; 256 ])
        [ 8; 16; 32 ];
      Obs.note m "(ratio roughly flat across n at fixed M => measured exponent matches";
      Obs.note m " the bound's omega0; ratio >= 1 everywhere: no schedule beat the bound)";
      (* Table I row 4: a general (non-2x2) base case, <6,6,6;189> *)
      let section = "general base case <6,6,6;189>, omega0 = log_6 189 = 2.924" in
      let g_alg = S.strassen_x_classical3 in
      let g_omega = A.omega0 g_alg in
      List.iter
        (fun n ->
          List.iter
            (fun mm ->
              let io = Obs.time m "simulate" (fun () -> lru_io g_alg n mm) in
              let bound = B.fast_memdep ~omega0:g_omega ~n ~m:mm ~p:1 () in
              Obs.rowf m ~section
                ~params:[ ("n", i n); ("M", i mm) ]
                [
                  ("measured", i io);
                  ("bound", f bound);
                  ("ratio", f (float_of_int io /. bound));
                ])
            [ 64; 256 ])
        [ 6; 36 ];
      Obs.note m "(row 4 of Table I: bounds known only WITHOUT recomputation — extending";
      Obs.note m " them to recomputation is the open problem in the paper's Section V)")

(* ----- TH1par ----- *)

let _th1par =
  define ~id:"TH1par"
    ~title:"Theorem 1.1 parallel - two regimes, the crossover, and the executed BFS runs"
    (fun mreg ->
      let n = 1 lsl 12 in
      List.iter
        (fun m ->
          let section =
            Printf.sprintf "n = %d, M = %d (crossover P* = %d)" n m
              (B.crossover_p ~n ~m ())
          in
          List.iter
            (fun p ->
              let md = B.fast_memdep ~n ~m ~p () in
              let mi = B.fast_memind ~n ~p () in
              let caps = Par.caps_words ~n ~p ~m in
              let bfs, dfs = Par.caps_schedule ~n ~p ~m in
              Obs.rowf mreg ~section
                ~params:[ ("P", i p) ]
                [
                  ("memdep", f md);
                  ("memind", f mi);
                  ("max", f (Float.max md mi));
                  ("caps sim", f caps);
                  ("caps/max", f (caps /. Float.max md mi));
                  ("bfs/dfs", s (Printf.sprintf "%d/%d" bfs dfs));
                ])
            [ 7; 49; 343; 2401; 16807 ])
        [ 4096; 65536 ];
      (* measured (executed) parallel communication vs the
         memory-independent bound: the word-level distributed executor
         on BFS partitions *)
      let section = "executed BFS-partitioned Strassen vs memind bound n^2/P^{2/w}" in
      List.iter
        (fun (n, depth) ->
          let c = cdag S.strassen n in
          let r = Obs.time mreg "par_exec" (fun () -> PE.strassen_bfs_experiment c ~depth) in
          (* bench-level assertion: the memory-limited executor with
             unbounded memory must reproduce the unlimited executor's
             counters EXACTLY — the invariant that pinned the
             run_limited occupancy-tracking rewrite *)
          let w = Fmm_machine.Workload.of_cdag c in
          let assignment = PE.bfs_assignment c ~depth ~procs:r.PE.procs in
          let lim =
            Obs.time mreg "par_exec_limited" (fun () ->
                PE.run_limited w ~procs:r.PE.procs ~assignment ~local_memory:max_int)
          in
          if
            lim.PE.total_words <> r.PE.total_words
            || lim.PE.sent <> r.PE.sent
            || lim.PE.received <> r.PE.received
          then
            failwith
              (Printf.sprintf
                 "TH1par: run_limited(max_int) diverged from run at n=%d depth=%d \
                  (%d vs %d words)"
                 n depth lim.PE.total_words r.PE.total_words);
          Obs.incr mreg "limited_counter_checks";
          let bound = B.fast_memind ~n ~p:r.PE.procs () in
          Obs.rowf mreg ~section
            ~params:[ ("n", i n); ("P", i r.PE.procs) ]
            [
              ("total words", i r.PE.total_words);
              ("max words/proc", i r.PE.max_words);
              ("bound", f bound);
              ("ratio", f (float_of_int r.PE.max_words /. bound));
            ])
        [ (8, 1); (16, 1); (16, 2); (32, 1); (32, 2) ];
      Obs.note mreg "(ratio stable in n at fixed P: the executed communication scales";
      Obs.note mreg " with the memory-independent exponent 2/omega0 of Theorem 1.1)")

(* ----- TH4 ----- *)

let _th4 =
  define ~id:"TH4" ~title:"Theorem 4.1 - alternative basis (Karstadt-Schwartz)"
    (fun m ->
      let section = "transform share and I/O bound for the KS algorithm" in
      List.iter
        (fun n ->
          let rng = Fmm_util.Prng.create ~seed:n in
          let a = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
          let b = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
          let _, mul_c, tr_c = AB.Transform_q.multiply AB.ks_winograd a b in
          let mm = 4 * n in
          let flat = AB.flatten AB.ks_winograd in
          let io = lru_io flat n mm in
          let bound = B.fast_sequential ~n ~m:mm () in
          Obs.rowf m ~section
            ~params:[ ("n", i n) ]
            [
              ("transform adds", i tr_c.A.Apply_q.adds);
              ("bilinear adds", i mul_c.A.Apply_q.adds);
              ( "share",
                f (float_of_int tr_c.A.Apply_q.adds /. float_of_int mul_c.A.Apply_q.adds) );
              ("M", i mm);
              ("I/O", i io);
              ("bound", f bound);
              ("ratio", f (float_of_int io /. bound));
            ])
        [ 8; 16; 32 ];
      Obs.note m "(share column -> 0: the premise of Theorem 4.1; ratio >= 1: the bound";
      Obs.note m " holds for the alternative-basis algorithm too)";
      (* the full Algorithm 1 pipeline as ONE CDAG, executed end to end:
         stage shares of actual Compute events *)
      let section = "full ABMM pipeline CDAG: compute-event share per stage" in
      List.iter
        (fun n ->
          let ab = Fmm_abmm.Abmm_cdag.build AB.ks_winograd ~n in
          let w = Fmm_abmm.Abmm_cdag.workload ab in
          let order =
            match Fmm_graph.Digraph.topo_sort ab.Fmm_abmm.Abmm_cdag.graph with
            | Some o ->
              List.filter
                (fun v -> not ab.Fmm_abmm.Abmm_cdag.is_primary_input.(v))
                o
            | None -> failwith "cycle"
          in
          let res = Sch.run_lru w ~cache_size:(8 * n) order in
          let shares = Fmm_abmm.Abmm_cdag.stage_compute_shares ab res.Sch.trace in
          let get st =
            match List.find (fun (name, _, _) -> name = st) shares with
            | _, _, x -> x
          in
          Obs.rowf m ~section
            ~params:[ ("n", i n) ]
            [
              ("phi", f (get "phi"));
              ("psi", f (get "psi"));
              ("core", f (get "core"));
              ("nu-inv", f (get "nu-inv"));
              ("transforms total", f (get "phi" +. get "psi" +. get "nu-inv"));
            ])
        [ 4; 8; 16 ])

(* ----- RC ----- *)

let _rc =
  define ~id:"RC"
    ~title:"recomputation - exact pebbling and the rematerializing scheduler"
    (fun m ->
      let section = "exact optimal red-blue pebbling I/O" in
      let add name red game =
        match Obs.time m "pebble" (fun () -> Pb.compare_recomputation game) with
        | Some w, Some wo ->
          Obs.rowf m ~section
            ~params:[ ("instance", s name); ("red", i red) ]
            [
              ("with recomp", i w);
              ("without", i wo);
              ("separation", s (if w < wo then "YES" else "no"));
            ]
        | _ ->
          Obs.rowf m ~section
            ~params:[ ("instance", s name); ("red", i red) ]
            [ ("separation", s "exhausted") ]
      in
      add "Savage-style DAG" 3 (Pd.recomputation_wins ());
      add "Strassen encoder A" 3 (Pd.encoder_game S.strassen Enc.A_side ~red_limit:3);
      add "Strassen encoder A" 5 (Pd.encoder_game S.strassen Enc.A_side ~red_limit:5);
      add "Winograd encoder A" 5 (Pd.encoder_game S.winograd Enc.A_side ~red_limit:5);
      add "KS-core encoder A" 4 (Pd.encoder_game AB.ks_core Enc.A_side ~red_limit:4);
      let c2 = cdag S.strassen 2 in
      add "H^{2x2} C21 fragment" 4
        (Pd.of_cdag_outputs c2 ~outputs:[ (Cd.outputs c2).(2) ] ~red_limit:4);
      add "H^{2x2} C12 fragment" 4
        (Pd.of_cdag_outputs c2 ~outputs:[ (Cd.outputs c2).(1) ] ~red_limit:4);
      let section = "spilling vs rematerializing on H^{16x16} (Strassen)" in
      List.iter
        (fun mm ->
          let lru =
            Sch.run_lru (work S.strassen 16) ~cache_size:mm (dfs_order S.strassen 16)
          in
          let rem =
            try
              Some
                (Sch.run_rematerialize (work S.strassen 16) ~cache_size:mm
                   (dfs_order S.strassen 16))
            with Failure _ -> None
          in
          let bound = B.fast_sequential ~n:16 ~m:mm () in
          let spill_io = Tr.io lru.Sch.counters in
          Obs.rowf m ~section
            ~params:[ ("M", i mm) ]
            ([
               ("spill I/O", i spill_io);
               ("spill ratio", f (float_of_int spill_io /. bound));
             ]
            @ (match rem with
              | Some r ->
                let rio = Tr.io r.Sch.counters in
                [
                  ("remat I/O", i rio);
                  ("ratio", f (float_of_int rio /. bound));
                ]
              | None -> [])
            @ [ ("spill flops", i lru.Sch.counters.Tr.computes) ]
            @ (match rem with
              | Some r -> [ ("remat flops", i r.Sch.counters.Tr.computes) ]
              | None -> [])
            @ [ ("bound", f bound) ]))
        [ 48; 64; 128; 256 ];
      Obs.note m
        "(remat I/O ratio >= 1 at every M: recomputation never beats the bound —";
      Obs.note m " the paper's headline, measured)")

(* ----- CO ----- *)

let _co =
  define ~id:"CO"
    ~title:"leading coefficients 7 -> 6 -> 5 (arith) and 10.5 -> 9 (I/O)"
    (fun m ->
      let section = "measured total ops (adds + mults) / n^{log2 7}" in
      let measured_total count n =
        let adds, mults = count n in
        float_of_int (adds + mults) /. (float_of_int n ** (log 7. /. log 2.))
      in
      let direct alg n =
        let rng = Fmm_util.Prng.create ~seed:n in
        let a = MI.random ~rng ~rows:n ~cols:n ~range:5 in
        let b = MI.random ~rng ~rows:n ~cols:n ~range:5 in
        let _, c = A.Apply_int.multiply alg a b in
        (c.A.Apply_int.adds, c.A.Apply_int.mults)
      in
      let winograd_reuse n =
        let rng = Fmm_util.Prng.create ~seed:n in
        let a = MI.random ~rng ~rows:n ~cols:n ~range:5 in
        let b = MI.random ~rng ~rows:n ~cols:n ~range:5 in
        let _, c = S.Winograd_reuse_int.multiply a b in
        (c.A.Apply_int.adds, c.A.Apply_int.mults)
      in
      let row name steps count =
        Obs.rowf m ~section
          ~params:[ ("algorithm", s name) ]
          [
            ("adds/step", i steps);
            ("closed-form c", f (B.leading_coefficient_of_adds ~adds_per_step:steps));
            ("n=16", f (measured_total count 16));
            ("n=32", f (measured_total count 32));
            ("n=64", f (measured_total count 64));
          ]
      in
      row "Strassen" (A.additions_per_step S.strassen) (direct S.strassen);
      row "Winograd (flattened)" (A.additions_per_step S.winograd) (direct S.winograd);
      row "Winograd (S/T reuse)" 15 winograd_reuse;
      row "KS core" (A.additions_per_step AB.ks_core) (direct AB.ks_core);
      Obs.note m "(the measured column converges to c - o(1): the paper's 7 -> 6 -> 5;";
      Obs.note m " Winograd's 6 requires the S/T reuse schedule, the KS core reaches";
      Obs.note m " coefficient 5 with no reuse at all)";
      let section = "I/O leading coefficients quoted in Section IV" in
      List.iter
        (fun (name, c) ->
          Obs.rowf m ~section
            ~params:[ ("algorithm", s name) ]
            [ ("paper constant", f c) ])
        B.io_leading_coefficients)

(* ----- HK ----- *)

let _hk =
  define ~id:"HK" ~title:"Hopcroft-Kerr (Lemma 3.4 / Corollary 3.5)"
    (fun m ->
      let section = "left operands in each forbidden set (max allowed = t - 6)" in
      List.iter
        (fun alg ->
          let checks = HK.check_algorithm alg in
          Obs.rowf m ~section
            ~params:[ ("algorithm", s (A.name alg)) ]
            (List.map2
               (fun (name, _) c -> (name, i c.HK.count))
               HK.forbidden_sets checks
            @ [ ("ok", mark (HK.all_ok checks)) ]))
        [ S.strassen; S.winograd; S.winograd_transposed; AB.ks_core; S.classical_2x2 ];
      let trials, found =
        Obs.time m "six_mult_search" (fun () ->
            HK.random_6mult_search ~trials:20_000 ~seed:11)
      in
      Obs.rowf m ~section:"randomized <2,2,2;6> search" ~params:[]
        [ ("candidates", i trials); ("found", s (if found then "FOUND - BUG!" else "none valid")) ];
      Obs.note m "(Hopcroft-Kerr: 7 multiplications are minimal for <2,2,2>)";
      Obs.rowf m ~section:"Strassen minus one product" ~params:[]
        [ ("unrepairable over Q", s (string_of_bool (HK.strassen_minus_one_is_unrepairable ()))) ])

(* ----- BS: basis search (the Karstadt-Schwartz optimization) ----- *)

let _bs =
  define ~id:"BS" ~title:"basis search - rediscovering Karstadt-Schwartz sparsity"
    (fun m ->
      let module BSx = Fmm_bilinear.Basis_search in
      let section = "unimodular hill-climb: nnz and adds/step of the searched core" in
      List.iter
        (fun alg ->
          let r = Obs.time m "basis_search" (fun () -> BSx.search ~seed:1 alg) in
          Obs.rowf m ~section
            ~params:[ ("algorithm", s (A.name alg)) ]
            [
              ("direct adds/step", i (A.additions_per_step alg));
              ("searched", i r.BSx.additions_per_step);
              ( "nnz U/V/W",
                s (Printf.sprintf "%d/%d/%d" r.BSx.nnz_u r.BSx.nnz_v r.BSx.nnz_w) );
              ( "coefficient",
                f (B.leading_coefficient_of_adds ~adds_per_step:r.BSx.additions_per_step)
              );
            ])
        [ S.strassen; S.winograd; S.winograd_transposed ];
      Obs.note m "(from Winograd the search reaches 12 additions/step = coefficient 5, the";
      Obs.note m " Karstadt-Schwartz result, without any hand-derivation)")

(* ----- L310: Lemma 3.10 (disjoint unions) ----- *)

let _l310 =
  define ~id:"L310" ~title:"Lemma 3.10 - undominated inputs of disjoint CDAG unions"
    (fun m ->
      let module DU = Fmm_lemmas.Disjoint_union_lemma in
      let section =
        "|I'| >= 2n sqrt(|O'| - 2|Gamma|) on q disjoint copies of H^{2x2}"
      in
      List.iter
        (fun (q, o, g) ->
          let u = DU.build_union S.strassen ~n:2 ~q in
          let smp = DU.sample u ~o_size:o ~gamma_size:g ~seed:(q + o + g) in
          Obs.rowf m ~section
            ~params:[ ("q", i q); ("|O'|", i o); ("|Gamma|", i g) ]
            [
              ("undominated", i smp.DU.undominated_inputs);
              ("bound", f smp.DU.bound);
              ("holds", mark smp.DU.holds);
            ])
        [ (1, 4, 0); (1, 4, 1); (3, 8, 2); (5, 12, 4); (8, 24, 8) ])

(* ----- FFT: Table I last row ----- *)

let _fft =
  define ~id:"FFT"
    ~title:"Table I last row - butterfly CDAG, measured I/O, recomputation"
    (fun m ->
      let module Bf = Fmm_fft.Butterfly in
      let section = "blocked FFT schedule vs n log n / log M bound" in
      List.iter
        (fun (n, mm) ->
          let bf = Bf.build ~n in
          let w = Bf.workload bf in
          let io =
            Tr.io
              (Sch.run_lru w ~cache_size:mm
                 (Bf.blocked_order bf ~block:(max 2 (mm / 4)))).Sch.counters
          in
          let bound = B.fft_memdep ~n ~m:mm ~p:1 in
          Obs.rowf m ~section
            ~params:[ ("n", i n); ("M", i mm) ]
            [
              ("measured", i io);
              ("bound", f bound);
              ("ratio", f (float_of_int io /. bound));
            ])
        [ (64, 8); (256, 8); (256, 32); (1024, 32); (1024, 128) ];
      (* recomputation on the FFT: [13]'s result in miniature *)
      (match
         Pb.compare_recomputation ~max_states:1_000_000
           (Bf.pebble_game ~n:4 ~red_limit:4)
       with
      | Some w, Some wo ->
        Obs.rowf m ~section:"FFT-4 exact pebbling" ~params:[]
          [
            ("with recomputation", i w);
            ("without", i wo);
            ("verdict", s (if w = wo then "equal, as [13] proves" else "SEPARATION?!"));
          ]
      | _ -> Obs.note m "FFT-4 pebbling: search exhausted");
      let bf = Bf.build ~n:64 in
      let w = Bf.workload bf in
      let lru = Sch.run_lru w ~cache_size:24 (Bf.blocked_order bf ~block:8) in
      let rem = Sch.run_rematerialize w ~cache_size:24 (Bf.blocked_order bf ~block:8) in
      Obs.rowf m ~section:"FFT-64 at M=24: spilling vs rematerializing" ~params:[]
        [
          ("spill io", i (Tr.io lru.Sch.counters));
          ("remat io", i (Tr.io rem.Sch.counters));
          ("spill computes", i lru.Sch.counters.Tr.computes);
          ("remat computes", i rem.Sch.counters.Tr.computes);
        ])

(* ----- LU: Section V conjecture - direct linear algebra ----- *)

let _lu =
  define ~id:"LU" ~title:"Section V conjecture - direct linear algebra"
    (fun m ->
      let module Lu = Fmm_lu.Lu_cdag in
      Obs.note m "The paper conjectures recomputation cannot reduce communication for";
      Obs.note m "direct linear algebra either. The LU-factorization CDAG testbed:";
      (* exact pebbling on the smallest instances *)
      (match
         Pb.compare_recomputation ~max_states:3_000_000
           (Lu.pebble_game ~n:3 ~red_limit:4)
       with
      | Some w, Some wo ->
        Obs.rowf m ~section:"LU(3) exact optimal pebbling (R=4)" ~params:[]
          [
            ("with recomputation", i w);
            ("without", i wo);
            ( "verdict",
              s
                (if w = wo then "equal - consistent with the conjecture"
                 else "SEPARATION?!") );
          ]
      | _ -> Obs.note m "LU(3) pebbling: exhausted");
      let section = "LU machine runs vs Omega(n^3/sqrt M)" in
      List.iter
        (fun (n, mm) ->
          let lu = Lu.build ~n in
          let w = Lu.workload lu in
          let order = Lu.elimination_order lu in
          let lru = Sch.run_lru w ~cache_size:mm order in
          let rem =
            (* rematerializing a deep elimination DAG explodes; cap the
               budget and skip the cell where it blows past it *)
            try Some (Sch.run_rematerialize ~max_flops:2_000_000 w ~cache_size:mm order)
            with Failure _ -> None
          in
          Obs.rowf m ~section
            ~params:[ ("n", i n); ("M", i mm) ]
            ([ ("spill I/O", i (Tr.io lru.Sch.counters)) ]
            @ (match rem with
              | Some r -> [ ("remat I/O", i (Tr.io r.Sch.counters)) ]
              | None -> [])
            @ [ ("bound", f (Lu.io_lower_bound ~n ~m:mm)) ]))
        [ (8, 16); (8, 64); (12, 64); (16, 64) ];
      Obs.note m "(rematerializing LU, like rematerializing fast MM, only ever costs more)")

(* ----- WA: Section V - write-avoiding / NVM asymmetry ----- *)

let _wa =
  define ~id:"WA" ~title:"Section V - trading recomputation for writes (NVM asymmetry)"
    (fun m ->
      Obs.note m "The paper's closing question: in NVM, writes cost more than reads;";
      Obs.note m "Blelloch et al. [26] show recomputation can reduce writes elsewhere.";
      Obs.note m "Here: the rematerializing schedule stores only outputs — minimal writes —";
      Obs.note m "at the price of many extra reads and flops.";
      let section = "reads/writes of spilling vs rematerializing (Strassen H^{16x16})" in
      List.iter
        (fun mm ->
          let add policy (res : Sch.result) =
            let c = res.Sch.counters in
            let cost w = c.Tr.loads + (w * c.Tr.stores) in
            Obs.rowf m ~section
              ~params:[ ("M", i mm); ("policy", s policy) ]
              [
                ("reads", i c.Tr.loads);
                ("writes", i c.Tr.stores);
                ("cost w=1", i (cost 1));
                ("cost w=10", i (cost 10));
                ("cost w=100", i (cost 100));
              ]
          in
          add "spill"
            (Sch.run_lru (work S.strassen 16) ~cache_size:mm (dfs_order S.strassen 16));
          add "remat"
            (Sch.run_rematerialize (work S.strassen 16) ~cache_size:mm
               (dfs_order S.strassen 16)))
        [ 64; 256 ];
      Obs.note m "(remat writes = 256 outputs only. At M = 256 and write cost 100 the";
      Obs.note m " rematerializing schedule WINS on weighted cost — recomputation can pay";
      Obs.note m " off under write/read asymmetry even though it never does unweighted:";
      Obs.note m " exactly the regime of the paper's closing open question [24]-[28])")

(* ----- OPT: the schedule optimizer vs the fixed policies ----- *)

(* Shared row shape for the OPT experiments: run a search, compare the
   best found schedule against the best feasible fixed policy and the
   relevant lower bound. "ratio" is a gated metric — the optimizer
   finding structurally worse schedules than before is a regression. *)
let opt_row m ~section ~params ~bound (r : Fmm_opt.Optimizer.report) =
  let module O = Fmm_opt.Optimizer in
  let fixed = List.filter_map snd r.O.baselines in
  let best_fixed = List.fold_left min max_int fixed in
  Obs.rowf m ~section ~params
    [
      ("best io", i r.O.best.O.io);
      ("best fixed", i best_fixed);
      ("gain", i (best_fixed - r.O.best.O.io));
      ("policy", s (O.policy_name r.O.best.O.candidate.O.policy));
      ("evaluated", i r.O.evaluated);
      ("checked", i r.O.accepted);
      ("ratio", f (float_of_int r.O.best.O.io /. bound));
      ( "verdict",
        mark
          (r.O.best.O.io <= best_fixed && float_of_int r.O.best.O.io >= bound)
      );
    ]

let _opt1 =
  define ~id:"OPT1" ~title:"optimizer smoke - Strassen H^{8x8}, 2 iterations"
    ~doc:
      "Fast fixed-seed beam search; the CI gate for the optimizer \
       subsystem. The verdict asserts the two-sided sandwich: best found \
       <= best fixed policy (by seeding) and >= the Theorem 1.1 bound (by \
       the theorem)."
    (fun m ->
      let module O = Fmm_opt.Optimizer in
      let section = "beam search vs fixed policies (Strassen, seed 1)" in
      List.iter
        (fun (n, mm, beam, iters) ->
          let r =
            Obs.time m (Printf.sprintf "search n=%d M=%d" n mm) (fun () ->
                O.optimize_cdag (cdag S.strassen n) ~cache_size:mm ~beam ~iters
                  ~seed:1 ~jobs:(jobs ()))
          in
          opt_row m ~section
            ~params:
              [ ("n", i n); ("M", i mm); ("beam", i beam); ("iters", i iters) ]
            ~bound:(B.fast_sequential ~n ~m:mm ()) r)
        [ (4, 16, 3, 2); (8, 32, 3, 2) ])

let _opt2 =
  define ~id:"OPT2"
    ~title:"optimizer at depth - Strassen H^{16x16} at M = 64"
    ~doc:
      "The acceptance configuration: the searched schedule must match or \
       beat LRU, Belady and rematerialization on the recursive order, and \
       its I/O still sits a constant factor above the recomputation-proof \
       Theorem 1.1 bound — rescheduling cannot close the gap."
    (fun m ->
      let module O = Fmm_opt.Optimizer in
      let section = "beam search vs fixed policies (Strassen, seed 1)" in
      let n = 16 and mm = 64 in
      let r =
        Obs.time m "search n=16 M=64" (fun () ->
            O.optimize_cdag (cdag S.strassen n) ~cache_size:mm ~beam:4 ~iters:4
              ~seed:1 ~jobs:(jobs ()))
      in
      opt_row m ~section
        ~params:[ ("n", i n); ("M", i mm); ("beam", i 4); ("iters", i 4) ]
        ~bound:(B.fast_sequential ~n ~m:mm ()) r;
      Obs.rowf m ~section:"best-I/O trajectory"
        ~params:[ ("n", i n); ("M", i mm) ]
        (List.mapi (fun it io -> (Printf.sprintf "it%d" it, i io)) r.O.history))

let _opt3 =
  define ~id:"OPT3" ~title:"optimizer on the butterfly - FFT-64 at M = 16"
    ~doc:
      "No bilinear CDAG here, so the reorder move falls back to generic \
       hot windows; seeds are the level and blocked orders. Ratio is \
       against the n log n / log M FFT bound."
    (fun m ->
      let module O = Fmm_opt.Optimizer in
      let module Bf = Fmm_fft.Butterfly in
      let n = 64 and mm = 16 in
      let bf = Bf.build ~n in
      let w = Bf.workload bf in
      let orders =
        [
          ("blocked", Bf.blocked_order bf ~block:(max 2 (mm / 4)));
          ("level", Bf.level_order bf);
        ]
      in
      let r =
        Obs.time m "search fft-64 M=16" (fun () ->
            O.search ~jobs:(jobs ()) ~beam:4 ~iters:4 ~seed:1 w ~cache_size:mm
              ~orders)
      in
      opt_row m ~section:"beam search vs fixed policies (butterfly, seed 1)"
        ~params:[ ("n", i n); ("M", i mm); ("beam", i 4); ("iters", i 4) ]
        ~bound:(B.fft_memdep ~n ~m:mm ~p:1) r)

(* ----- AN: the dataflow certifier and the incremental oracle ----- *)

let _an1 =
  define ~id:"AN1"
    ~title:"certifier - static MAXLIVE / I/O lower bound vs measured policies"
    ~doc:
      "Certify.run on several (algorithm, n, M) points: the static \
       min-cache from Dataflow.trace_profile must equal the dynamic peak \
       occupancy of every policy trace, and the interval-liveness I/O \
       lower bound must sit under every no-recomputation policy — the \
       sandwich lb <= belady <= lru, with rematerialization beside it. \
       The gated ratio is belady/lb: it drifting up means the bound got \
       looser or Belady got worse."
    (fun m ->
      let module Ct = Fmm_analysis.Certify in
      let section = "static vs dynamic certification (dfs order)" in
      List.iter
        (fun (alg, n, mm) ->
          let c =
            Obs.time m (Printf.sprintf "certify %s n=%d M=%d" (A.name alg) n mm)
              (fun () ->
                Ct.run ~jobs:(jobs ()) ~cdag:(cdag alg n) ~cache_size:mm
                  (work alg n) ~order:(dfs_order alg n))
          in
          let io name =
            match List.find_opt (fun r -> r.Ct.policy = name) c.Ct.rows with
            | Some r when r.Ct.feasible -> r.Ct.io
            | _ -> -1
          in
          let agree = List.for_all (fun r -> r.Ct.agree) c.Ct.rows in
          let lb = c.Ct.io_lower_bound in
          let belady = io "belady" in
          Obs.rowf m ~section
            ~params:[ ("algorithm", s (A.name alg)); ("n", i n); ("M", i mm) ]
            [
              ("maxlive", i c.Ct.maxlive);
              ("static lb", i lb);
              ("belady", i belady);
              ("lru", i (io "lru"));
              ("remat", i (io "remat"));
              ("ratio", f (float_of_int belady /. float_of_int lb));
              ("agree", mark agree);
              ("verdict", mark (Ct.certified c && belady >= lb));
            ])
        [
          (S.strassen, 8, 32);
          (S.strassen, 16, 64);
          (S.winograd, 8, 32);
          (AB.ks_core, 4, 16);
        ];
      Obs.note m
        "(the certifier itself errors on any static/dynamic disagreement — \
         'agree' failing would also fail the --certify CI gate)")

let _an2 =
  define ~id:"AN2"
    ~title:"incremental oracle - check_delta vs full replay in the beam search"
    ~doc:
      "The OPT2 configuration under both oracle modes. The oracle can \
       only veto, so the searches must coincide byte-for-byte: same best \
       schedule, same trajectory, same beam, same trace. The incremental \
       mode re-interprets only the mutated window of each admitted \
       schedule (plus one full pass per re-memoization); rows carry the \
       deterministic event accounting, while the wall-clock speedup goes \
       to the volatile _s scalars — timings are load-sensitive, registry \
       rows are not."
    (fun m ->
      let module O = Fmm_opt.Optimizer in
      let module Tc = Fmm_analysis.Trace_check in
      let module CM = Fmm_machine.Cache_machine in
      let n = 16 and mm = 64 in
      let c = cdag S.strassen n in
      let t0 = Unix.gettimeofday () in
      let full =
        O.optimize_cdag c ~cache_size:mm ~beam:3 ~iters:2 ~seed:1
          ~oracle_mode:O.Full_replay ~jobs:(jobs ())
      in
      let t1 = Unix.gettimeofday () in
      let inc =
        O.optimize_cdag c ~cache_size:mm ~beam:3 ~iters:2 ~seed:1
          ~oracle_mode:O.Incremental ~jobs:(jobs ())
      in
      let t2 = Unix.gettimeofday () in
      Obs.gauge m "search_full_replay_s" (t1 -. t0);
      Obs.gauge m "search_incremental_s" (t2 -. t1);
      let beam_key r =
        List.map (fun ev -> (ev.O.io, ev.O.candidate.O.provenance)) r.O.beam
      in
      let same =
        full.O.best.O.io = inc.O.best.O.io
        && full.O.best.O.candidate.O.provenance
           = inc.O.best.O.candidate.O.provenance
        && full.O.history = inc.O.history
        && full.O.accepted = inc.O.accepted
        && beam_key full = beam_key inc
        && full.O.best.O.result.Sch.trace = inc.O.best.O.result.Sch.trace
      in
      let bound = B.fast_sequential ~n ~m:mm () in
      Obs.rowf m ~section:"oracle modes (Strassen H^{16x16}, M = 64, seed 1)"
        ~params:[ ("n", i n); ("M", i mm); ("beam", i 3); ("iters", i 2) ]
        [
          ("best io", i inc.O.best.O.io);
          ("accepted", i inc.O.accepted);
          ("events total", i inc.O.oracle_total);
          ("events replayed", i inc.O.oracle_replayed);
          ( "reuse %",
            f
              (100.
              *. float_of_int (inc.O.oracle_total - inc.O.oracle_replayed)
              /. float_of_int (max 1 inc.O.oracle_total)) );
          ("ratio", f (float_of_int inc.O.best.O.io /. bound));
          ("identical", mark same);
          ("verdict", mark (same && full.O.oracle_replayed = full.O.oracle_total));
        ];
      (* The oracle in isolation, free of candidate-evaluation noise:
         one admitted schedule, one small legal mutation (two adjacent
         Loads swapped), K verdicts per mode. This is the unit of work
         the beam pays per entrant whose move stayed local. *)
      let w = work S.strassen n in
      let o = dfs_order S.strassen n in
      let trace = (Sch.run_lru w ~cache_size:mm o).Sch.trace in
      let _, base = Tc.check_cached ~cache_size:mm w trace in
      let mutated =
        let arr = Array.of_list trace in
        let k = ref (-1) in
        (try
           for p = Array.length arr / 2 to Array.length arr - 2 do
             match (arr.(p), arr.(p + 1)) with
             | Tr.Load a, Tr.Load b when a <> b ->
               k := p;
               raise Exit
             | _ -> ()
           done
         with Exit -> ());
        if !k >= 0 then begin
          let tmp = arr.(!k) in
          arr.(!k) <- arr.(!k + 1);
          arr.(!k + 1) <- tmp
        end;
        Array.to_list arr
      in
      let reps = 10 in
      let t3 = Unix.gettimeofday () in
      let v = ref (Tc.check_delta ~base w mutated) in
      for _ = 2 to reps do
        v := Tc.check_delta ~base w mutated
      done;
      let t4 = Unix.gettimeofday () in
      for _ = 1 to reps do
        ignore (CM.replay { CM.cache_size = mm; allow_recompute = true } w mutated);
        ignore (Tc.check ~cache_size:mm w mutated)
      done;
      let t5 = Unix.gettimeofday () in
      let delta_s = (t4 -. t3) /. float_of_int reps
      and full_s = (t5 -. t4) /. float_of_int reps in
      Obs.gauge m "oracle_delta_unit_s" delta_s;
      Obs.gauge m "oracle_full_unit_s" full_s;
      Obs.gauge m "oracle_speedup_s" (if delta_s > 0. then full_s /. delta_s else nan);
      Obs.rowf m ~section:"oracle unit cost (one swapped-Load mutation)"
        ~params:[ ("n", i n); ("M", i mm) ]
        [
          ("trace events", i (List.length trace));
          ("replayed", i !v.Tc.replayed);
          ("reused prefix", i !v.Tc.reused_prefix);
          ("reused suffix", i !v.Tc.reused_suffix);
          ("errors", i !v.Tc.v_errors);
        ];
      Obs.note m
        "(wall clocks live in the _s scalars: search_full_replay_s vs \
         search_incremental_s for the whole search, oracle_*_unit_s and \
         oracle_speedup_s for the oracle alone)")

(* ----- FT1..FT3: fault injection and recovery ----- *)

module Sim = Fmm_fault.Sim

(* Shared helper: run the seeded simulator, cross-validate the event
   log with the replay checker, and fail the experiment (not just a
   row) if the recovered execution violates read-before-send or loses
   an output — these are correctness invariants, not measurements. *)
let fault_run ~id w ~procs ~assignment ~policy ~fail ~seed ~bound =
  let r = Sim.simulate w ~procs ~assignment ~policy ~fail ~seed ~bound () in
  let replay = Sim.check w r in
  let errs = Fmm_analysis.Diagnostic.n_errors replay.Fmm_analysis.Par_check.report in
  if errs <> 0 || replay.Fmm_analysis.Par_check.lost_outputs <> 0 then
    failwith
      (Printf.sprintf
         "%s: recovered run invalid (policy %s, fail %d): %d replay errors, %d \
          lost outputs"
         id (Sim.policy_name policy) fail errs
         replay.Fmm_analysis.Par_check.lost_outputs);
  r

let _ft1 =
  define ~id:"FT1" ~title:"fault injection - fault-free parity with Par_exec"
    ~doc:
      "With zero failures every policy must reproduce the plain \
       executor's per-processor census exactly (Replicate 1 pushes no \
       replicas). This is the CI smoke: any divergence is a simulator \
       bug, so it fails the experiment rather than shading a ratio."
    (fun m ->
      let section = "fault-free parity (BFS Strassen)" in
      List.iter
        (fun (n, depth) ->
          let c = cdag S.strassen n in
          let w = work S.strassen n in
          let r0 = PE.strassen_bfs_experiment c ~depth in
          let assignment = PE.bfs_assignment c ~depth ~procs:r0.PE.procs in
          List.iter
            (fun policy ->
              let r =
                fault_run ~id:"FT1" w ~procs:r0.PE.procs ~assignment ~policy
                  ~fail:0 ~seed:1 ~bound:(B.fast_memind ~n ~p:r0.PE.procs ())
              in
              if
                r.Sim.total_words <> r0.PE.total_words
                || r.Sim.sent <> r0.PE.sent
                || r.Sim.received <> r0.PE.received
              then
                failwith
                  (Printf.sprintf
                     "FT1: zero-failure %s diverged from Par_exec.run at n=%d \
                      depth=%d (%d vs %d words)"
                     (Sim.policy_name policy) n depth r.Sim.total_words
                     r0.PE.total_words);
              Obs.incr m "parity_checks";
              Obs.rowf m ~section
                ~params:
                  [
                    ("n", i n);
                    ("P", i r0.PE.procs);
                    ("policy", s (Sim.policy_name policy));
                  ]
                [
                  ("total words", i r.Sim.total_words);
                  ("parity", mark (r.Sim.total_words = r0.PE.total_words));
                ])
            [ Sim.Recompute_local; Sim.Refetch_owner; Sim.Replicate 1 ])
        [ (16, 1); (16, 2) ])

let _ft2 =
  define ~id:"FT2" ~title:"fault injection - single-failure overhead per policy"
    ~doc:
      "One seeded crash mid-sweep; each recovery policy replays to \
       completion. Overhead is total words vs the fault-free run of \
       the same partition; the ratio rows are baseline-gated. \
       Replicate pays its replication up front, so its overhead \
       dominates on these small instances."
    (fun m ->
      let n = 16 and depth = 1 in
      let c = cdag S.strassen n in
      let w = work S.strassen n in
      let procs = 7 in
      let assignment = PE.bfs_assignment c ~depth ~procs in
      let bound = B.fast_memind ~n ~p:procs () in
      let section =
        Printf.sprintf "one crash, BFS Strassen n = %d on P = %d (seed 7)" n
          procs
      in
      List.iter
        (fun policy ->
          let r =
            fault_run ~id:"FT2" w ~procs ~assignment ~policy ~fail:1 ~seed:7
              ~bound
          in
          Obs.rowf m ~section
            ~params:[ ("policy", s (Sim.policy_name policy)) ]
            [
              ("total words", i r.Sim.total_words);
              ("max words/proc", i r.Sim.max_words);
              ("recovery words", i r.Sim.recovery_words);
              ("replication words", i r.Sim.replication_words);
              ("recomputed", i r.Sim.recomputed);
              ("ratio", f r.Sim.overhead_total);
            ])
        [ Sim.Recompute_local; Sim.Refetch_owner; Sim.Replicate 2 ])

let _ft3 =
  define ~id:"FT3" ~title:"fault injection - overhead vs failure count"
    ~doc:
      "Recompute-local recovery under an increasing seeded failure \
       load on one fixed BFS partition. Overhead grows roughly \
       linearly in the failure count here: each crash loses one \
       processor's subtree and its resident foreign words, and the \
       re-derivation re-fetches a bounded operand set."
    (fun m ->
      let n = 16 and depth = 2 in
      let c = cdag S.strassen n in
      let w = work S.strassen n in
      let procs = 49 in
      let assignment = PE.bfs_assignment c ~depth ~procs in
      let bound = B.fast_memind ~n ~p:procs () in
      let section =
        Printf.sprintf
          "recompute-local, BFS Strassen n = %d on P = %d (seed 11)" n procs
      in
      List.iter
        (fun fail ->
          let r =
            fault_run ~id:"FT3" w ~procs ~assignment
              ~policy:Sim.Recompute_local ~fail ~seed:11 ~bound
          in
          Obs.rowf m ~section
            ~params:[ ("failures", i fail) ]
            [
              ("total words", i r.Sim.total_words);
              ("max words/proc", i r.Sim.max_words);
              ("recovery words", i r.Sim.recovery_words);
              ("recomputed", i r.Sim.recomputed);
              ("ratio", f r.Sim.overhead_total);
              ( "bound ratio",
                f (Option.value ~default:nan r.Sim.bound_ratio) );
            ])
        [ 0; 1; 2; 4; 8 ];
      Obs.note m
        "(fail = 0 is the parity row: ratio exactly 1.0 by construction)")

(* ----- CS1/CS2: COSMA-style schedule generation ----- *)

module G = Fmm_sched.Generator

(* Replaying cleanly through the crash-aware log checker is a
   correctness invariant of every generated assignment, not a
   measurement: a dirty replay fails the experiment. *)
let cs_validate ~id ~what w ~procs ~assignment =
  let replay = G.validate w ~procs ~assignment in
  let errs =
    Fmm_analysis.Diagnostic.n_errors replay.Fmm_analysis.Par_check.report
  in
  if errs <> 0 || replay.Fmm_analysis.Par_check.lost_outputs <> 0 then
    failwith
      (Printf.sprintf
         "%s: %s replays dirty on P = %d: %d replay errors, %d lost outputs" id
         what procs errs replay.Fmm_analysis.Par_check.lost_outputs)

(* Smallest BFS depth whose t^depth subtrees cover P processors — the
   baseline partition every generated split is gated against. *)
let bfs_depth ~rank ~procs =
  let rec go d pw = if pw >= procs then d else go (d + 1) (pw * rank) in
  go 0 1

let _cs1 =
  define ~id:"CS1" ~title:"COSMA generator smoke - split vs BFS, Strassen n = 16"
    ~doc:
      "The per-commit smoke for lib/sched: split the recursive-DFS \
       order of Strassen n = 16 across P = 7, replay-validate the \
       assignment, and gate its measured census against the depth-1 \
       BFS partition (the generated split must not communicate more). \
       Also runs the (p1, p2, p3) grid search on the pure classical \
       n = 8 CDAG. Gate violations fail the experiment; the ratio rows \
       (total words vs P times the Theorem 4.1 bound) are \
       baseline-gated."
    (fun m ->
      let n = 16 and procs = 7 in
      let c = cdag S.strassen n in
      let w = work S.strassen n in
      let split =
        G.split_order w ~procs (Array.of_list (dfs_order S.strassen n))
      in
      cs_validate ~id:"CS1" ~what:"generated split" w ~procs
        ~assignment:split.G.assignment;
      if split.G.crossing <> (PE.run w ~procs ~assignment:split.G.assignment).PE.total_words
      then failwith "CS1: split census disagrees with Par_exec.run";
      let bfs = PE.bfs_assignment c ~depth:(bfs_depth ~rank:7 ~procs) ~procs in
      let rb = PE.run w ~procs ~assignment:bfs in
      let rg = PE.run w ~procs ~assignment:split.G.assignment in
      if rg.PE.total_words > rb.PE.total_words then
        failwith
          (Printf.sprintf "CS1: generated split loses to BFS (%d > %d words)"
             rg.PE.total_words rb.PE.total_words);
      let bound = G.memind_bound c ~procs in
      let tot_bound = float_of_int procs *. bound in
      let section = "split vs BFS (Strassen n = 16, P = 7, M = inf)" in
      List.iter
        (fun (name, r) ->
          Obs.rowf m ~section
            ~params:[ ("schedule", s name) ]
            [
              ("total words", i r.PE.total_words);
              ("max words/proc", i r.PE.max_words);
              ("ratio", f (float_of_int r.PE.total_words /. tot_bound));
              ("gate", mark (r.PE.total_words <= rb.PE.total_words));
            ])
        [ ("bfs depth 1", rb); ("generated split", rg) ];
      (* the exact-integer grid search on the classical iteration cube *)
      let nc = 8 in
      let cl = Cd.build S.strassen ~n:nc ~cutoff:nc in
      let wl = Fmm_machine.Workload.of_cdag cl in
      let (g1, g2, g3), cost, rm, asg = G.grid_search cl ~procs:8 in
      cs_validate ~id:"CS1" ~what:"grid assignment" wl ~procs:8 ~assignment:asg;
      Obs.rowf m ~section:"grid search (classical n = 8, P = 8)"
        ~params:[ ("grid", s (Printf.sprintf "%dx%dx%d" g1 g2 g3)) ]
        [
          ("model words/proc", f cost.Par.words_per_proc);
          ("rounds", i cost.Par.rounds);
          ("measured total", i rm.PE.total_words);
          ("max words/proc", i rm.PE.max_words);
        ])

let _cs2 =
  define ~id:"CS2"
    ~title:"COSMA acceptance - generated splits vs BFS across (P, M)"
    ~doc:
      "The issue's acceptance sweep. Strassen n in {16, 32} on P in \
       {7, 49}, executed unlimited and under M in {64, 256, 1024} \
       local words: the generated split must communicate no more total \
       words than the BFS partition at the same (P, M) — a violation \
       fails the experiment, and every assignment must replay cleanly. \
       Then the Theorem 4.1 gate across every square registry \
       algorithm (measured traffic vs the memory-independent bound, \
       ratio >= 1), and the fault-injection overhead of a generated \
       schedule under the refetch-owner policy."
    (fun m ->
      List.iter
        (fun n ->
          let c = cdag S.strassen n in
          let w = work S.strassen n in
          let order = Array.of_list (dfs_order S.strassen n) in
          List.iter
            (fun procs ->
              let split = G.split_order w ~procs order in
              cs_validate ~id:"CS2" ~what:"generated split" w ~procs
                ~assignment:split.G.assignment;
              let bfs =
                PE.bfs_assignment c ~depth:(bfs_depth ~rank:7 ~procs) ~procs
              in
              let tot_bound =
                float_of_int procs *. G.memind_bound c ~procs
              in
              let section = Printf.sprintf "Strassen n = %d, P = %d" n procs in
              List.iter
                (fun mem ->
                  let run asg =
                    if mem = max_int then PE.run w ~procs ~assignment:asg
                    else
                      PE.run_limited w ~procs ~assignment:asg ~local_memory:mem
                  in
                  let rb = run bfs in
                  let rg = run split.G.assignment in
                  if rg.PE.total_words > rb.PE.total_words then
                    failwith
                      (Printf.sprintf
                         "CS2: generated split loses to BFS at n = %d, P = %d, \
                          M = %s (%d > %d words)"
                         n procs
                         (if mem = max_int then "inf" else string_of_int mem)
                         rg.PE.total_words rb.PE.total_words);
                  Obs.incr m "gate_checks";
                  Obs.rowf m ~section
                    ~params:[ ("M", if mem = max_int then s "inf" else i mem) ]
                    [
                      ("bfs total", i rb.PE.total_words);
                      ("gen total", i rg.PE.total_words);
                      ("bfs vs bound", f (float_of_int rb.PE.total_words /. tot_bound));
                      ("ratio", f (float_of_int rg.PE.total_words /. tot_bound));
                      ("gate", mark (rg.PE.total_words <= rb.PE.total_words));
                    ])
                [ max_int; 64; 256; 1024 ])
            [ 7; 49 ])
        [ 16; 32 ];
      (* Theorem 4.1 gate: on every square registry algorithm the
         generated split's measured traffic must sit above the
         memory-independent bound — the bound is a floor, so a ratio
         below 1 would mean the census (or the bound) is wrong. *)
      let section = "Theorem 4.1 gate (square registry algorithms)" in
      List.iter
        (fun alg ->
          let n0, m0, k0 = A.dims alg in
          if n0 = m0 && m0 = k0 then begin
            let n = n0 * n0 in
            if Cd.n_vertices (cdag alg n) <= 60_000 then begin
              let c = cdag alg n in
              let w = work alg n in
              let procs = A.rank alg in
              let split =
                G.split_order w ~procs (Array.of_list (dfs_order alg n))
              in
              cs_validate ~id:"CS2" ~what:(A.name alg ^ " split") w ~procs
                ~assignment:split.G.assignment;
              let r = PE.run w ~procs ~assignment:split.G.assignment in
              let bound = G.memind_bound c ~procs in
              Obs.rowf m ~section
                ~params:
                  [ ("algorithm", s (A.name alg)); ("n", i n); ("P", i procs) ]
                [
                  ("max words/proc", i r.PE.max_words);
                  ("Thm 4.1 bound", f bound);
                  ("ratio", f (float_of_int r.PE.max_words /. bound));
                  ("gate", mark (float_of_int r.PE.max_words >= bound -. 1e-9));
                ]
            end
          end)
        S.registry;
      (* fault overhead of a generated schedule: the issue asks for the
         recovery ratios of at least one generated assignment *)
      let c16 = cdag S.strassen 16 in
      let w16 = work S.strassen 16 in
      let split16 =
        G.split_order w16 ~procs:7 (Array.of_list (dfs_order S.strassen 16))
      in
      let bound16 = G.memind_bound c16 ~procs:7 in
      List.iter
        (fun fail ->
          let r =
            fault_run ~id:"CS2" w16 ~procs:7 ~assignment:split16.G.assignment
              ~policy:Sim.Refetch_owner ~fail ~seed:7 ~bound:bound16
          in
          Obs.rowf m ~section:"fault overhead (generated split, refetch-owner)"
            ~params:[ ("failures", i fail) ]
            [
              ("total words", i r.Sim.total_words);
              ("recovery words", i r.Sim.recovery_words);
              ("ratio", f r.Sim.overhead_total);
            ])
        [ 0; 1; 2 ])

(* ----- PERF: bechamel timings ----- *)

(* ----- IC1/IC2: implicit recursion-indexed CDAG at scale ----- *)

let _ic1 =
  define ~id:"IC1"
    ~title:"implicit CDAG: censuses + streaming segment I/O at n = 256"
    (fun m ->
      let module Im = Fmm_cdag.Implicit in
      let section = "implicit CDAG (no materialized graph)" in
      (* parity with the explicit builder where both exist *)
      let cd16 = cdag S.strassen 16 in
      Obs.rowf m ~section
        ~params:[ ("alg", s "Strassen"); ("n", i 16) ]
        [
          ("stats parity", mark (Cd.stats cd16 = Im.stats (Im.of_cdag cd16)));
          ( "V_out parity",
            mark
              (List.sort compare (Cd.sub_outputs cd16 ~r:4)
              = List.sort compare (Im.sub_outputs (Im.of_cdag cd16) ~r:4)) );
        ];
      (* closed-form censuses at scales the explicit builder cannot reach *)
      List.iter
        (fun (alg, n) ->
          let imp = Im.create alg ~n in
          Obs.rowf m ~section
            ~params:[ ("alg", s (A.name alg)); ("n", i n) ]
            [
              ("vertices", i (Im.n_vertices imp));
              ("edges", i (Im.n_edges imp));
              ("mult", i (List.assoc "mult" (Im.stats imp)));
              ("|V_out| r=n/2", i (Im.sub_output_count imp ~r:(n / 2)));
            ])
        [ (S.strassen, 256); (S.winograd, 256); (S.strassen, 1024) ];
      (* Theorem 1.1 instantiation at n = 256, M = 4096: s = 64,
         r = 2 sqrt(M) = 128, quota = 4M — the regime the explicit path
         could never execute (40M vertices, 80M edges) *)
      let mm = 4096 and r = 128 in
      List.iter
        (fun alg ->
          let imp = Im.create alg ~n:256 in
          let seg, counters = Seg.analyze_implicit imp ~cache_size:mm ~r () in
          let memdep = B.fast_sequential ~n:256 ~m:mm () in
          Obs.rowf m ~section
            ~params:
              [ ("alg", s (A.name alg)); ("n", i 256); ("M", i mm); ("r", i r) ]
            ([
               ("I/O", i (Tr.io counters));
               ("ratio", f (float_of_int (Tr.io counters) /. memdep));
               ("full segs", i (List.length (Seg.full_segments seg)));
             ]
            @ (match Seg.min_io_full_segments seg with
              | Some x -> [ ("min seg I/O", i x) ]
              | None -> [])
            @ [
                ("bound", i seg.Seg.bound);
                ("holds", mark (Seg.lemma_3_6_holds seg));
              ]))
        [ S.strassen; S.winograd ];
      Obs.note m
        "(streaming LRU on the canonical ascending-id order; segment bound = \
         r^2/2 - M)")

let _ic2 =
  define ~id:"IC2"
    ~title:"implicit CDAG: streaming MAXLIVE + exact bound arithmetic"
    (fun m ->
      let module Im = Fmm_cdag.Implicit in
      let module Df = Fmm_analysis.Dataflow in
      let section = "streaming liveness of the canonical order" in
      (* event-for-event parity with the explicit scheduler *)
      let cd8 = cdag S.strassen 8 in
      let imp8 = Im.of_cdag cd8 in
      let order8 =
        List.init
          (Im.n_vertices imp8 - Im.n_inputs imp8)
          (fun k -> Im.n_inputs imp8 + k)
      in
      let er = Sch.run_lru (work S.strassen 8) ~cache_size:32 order8 in
      let ir = Fmm_machine.Stream_exec.run_lru_collect imp8 ~cache_size:32 in
      Obs.rowf m ~section
        ~params:[ ("alg", s "Strassen"); ("n", i 8); ("M", i 32) ]
        [
          ("trace parity", mark (er.Sch.trace = ir.Sch.trace));
          ("counter parity", mark (er.Sch.counters = ir.Sch.counters));
        ];
      (* MAXLIVE and the policy-independent I/O lower bound at n = 256 *)
      List.iter
        (fun alg ->
          let imp = Im.create alg ~n:256 in
          let sl = Df.implicit_order_liveness imp in
          Obs.rowf m ~section
            ~params:[ ("alg", s (A.name alg)); ("n", i 256) ]
            [
              ("maxlive", i sl.Df.Streamed.maxlive);
              ("inputs used", i sl.Df.Streamed.inputs_used);
              ( "I/O bound M=4096",
                i (Df.streamed_io_lower_bound sl ~cache_size:4096) );
            ])
        [ S.strassen; S.winograd ];
      (* exact big-integer crossover vs the old float pipeline's turf *)
      Obs.rowf m ~section:"exact classical crossover (P^2 M^3 >= n^6)"
        ~params:[ ("n", s "2^20"); ("M", s "2^20") ]
        [
          ("P*", i (B.classical_crossover_p ~n:(1 lsl 20) ~m:(1 lsl 20)));
          ( "= 2^30",
            mark (B.classical_crossover_p ~n:(1 lsl 20) ~m:(1 lsl 20) = 1 lsl 30)
          );
        ];
      Obs.note m
        "(MAXLIVE via interval sweep with a stop-position heap; no per-vertex \
         arrays)")

(* ----- NE1 / NE2: the numeric execution backend ----- *)

let _ne1 =
  define ~id:"NE1" ~title:"numeric executor - schedules run on real matrices"
    ~doc:
      "Execute LRU / Belady / rematerializing / hybrid schedules on concrete \
       data (float64 with a physical M-word arena, Z_65537 as bit-exact \
       oracle) and check the result against classical MM and the executed \
       counters against the word-counting simulators, event for event."
    (fun m ->
      let module Ex = Fmm_exec.Executor in
      let section = "executed schedules vs predictions" in
      let emit v =
        (* hard gate: a wrong numeric result or a counter divergence is a
           broken executor, not a ratio drift — fail the experiment *)
        if not (Ex.verification_ok v) then
          failwith
            (Printf.sprintf
               "NE1: %s n=%d M=%d %s: executed result or counters diverge"
               v.Ex.algorithm v.Ex.n v.Ex.cache_size v.Ex.policy_name);
        List.iter
          (fun r ->
            Obs.rowf m ~section
              ~params:
                [
                  ("algorithm", s v.Ex.algorithm);
                  ("n", i v.Ex.n);
                  ("M", i v.Ex.cache_size);
                  ("policy", s v.Ex.policy_name);
                  ("backend", s r.Ex.backend);
                ]
              [
                ("loads", i r.Ex.executed.Tr.loads);
                ("stores", i r.Ex.executed.Tr.stores);
                ("io", i (Tr.io r.Ex.executed));
                ("recomputes", i r.Ex.executed.Tr.recomputes);
                ("peak", i r.Ex.peak_occupancy);
                ("result", mark r.Ex.result_ok);
                ("counters", mark r.Ex.counters_ok);
              ])
          v.Ex.reports
      in
      List.iter
        (fun (alg, n, mem) ->
          List.iter
            (fun policy ->
              let c = cdag alg n in
              let sched = Ex.schedule c ~cache_size:mem policy in
              emit
                (Ex.verify_sched ~seed:7 ~backends:[ `F64; `Zp ] c
                   ~cache_size:mem
                   ~policy_name:(Ex.policy_to_string policy)
                   sched))
            Ex.all_policies)
        [ (S.strassen, 16, 64); (S.winograd, 16, 64); (S.strassen, 8, 32) ];
      (* a hybrid (per-value spill-vs-recompute) schedule: the executor
         accepts any replay-verified trace, not just the fixed policies *)
      let c = cdag S.strassen 16 in
      let sched =
        Sch.run_hybrid (work S.strassen 16) ~cache_size:64
          ~recompute:(fun v -> v mod 5 = 0)
          (dfs_order S.strassen 16)
      in
      emit
        (Ex.verify_sched ~seed:7 ~backends:[ `F64; `Zp ] c ~cache_size:64
           ~policy_name:"hybrid" sched);
      Obs.note m
        "(result: executed output = classical MM — exact over Z_65537, within \
         1e-9 over float64; counters: executed = scheduler's prediction)")

let _ne2 =
  define ~id:"NE2" ~title:"Strassen vs classical crossover (float64 kernels)"
    ~doc:
      "Sweep the blocked classical kernel against recursive Strassen \
       (cutoff 64) on float64: deterministic flop counts and agreement marks \
       in the rows, wall clocks only in _s scalars."
    (fun m ->
      let module K = Fmm_exec.Kernel in
      let rng = Fmm_util.Prng.create ~seed:11 in
      let cutoff = 64 in
      let section = "float64 kernel sweep (cutoff 64)" in
      List.iter
        (fun n ->
          let a = K.random rng n and b = K.random rng n in
          let t0 = Unix.gettimeofday () in
          let c_ref = K.blocked_mul a b in
          let t1 = Unix.gettimeofday () in
          let c_fast, fl = K.fast_mul ~cutoff S.strassen a b in
          let t2 = Unix.gettimeofday () in
          let err = K.rel_err c_fast ~reference:c_ref in
          let cl = K.classical_flops n in
          let total x = x.K.adds + x.K.mults in
          Obs.rowf m ~section ~params:[ ("n", i n) ]
            [
              ("classical flops", i (total cl));
              ("strassen flops", i (total fl));
              ( "flop ratio",
                f (float_of_int (total fl) /. float_of_int (total cl)) );
              ("max rel err", f err);
              ("agree", mark (err <= 1e-9));
            ];
          (* wall clocks are volatile: _s scalars only, stripped by the
             baseline/determinism comparisons *)
          Obs.gauge m (Printf.sprintf "ne2_classical_n%d_s" n) (t1 -. t0);
          Obs.gauge m (Printf.sprintf "ne2_strassen_n%d_s" n) (t2 -. t1))
        [ 64; 128; 256; 512 ];
      Obs.note m
        "(flop ratio < 1 from n = 128: Strassen saves arithmetic as soon as \
         one recursion level is in play; the wall-clock crossover lives in \
         the ne2_*_s scalars and moves with the machine)")

(* ----- HY1 / HY2: the hybrid Strassen/classical scenario family ----- *)

let _hy1 =
  define ~id:"HY1" ~title:"hybrid CDAGs - lint / certify / execute per cutoff"
    ~doc:
      "Build the cutoff-parameterized Strassen/classical CDAG at every \
       cutoff of H^{16x16} and push each through the whole verification \
       stack: structural lint, the static/dynamic certifier, the static \
       trace checker (zero replay violations), and the numeric executor \
       (float64 arena + Z_65537 oracle). Any failure anywhere is a broken \
       hybrid builder, so every check is a hard gate, not a drifting \
       ratio."
    (fun m ->
      let module Ex = Fmm_exec.Executor in
      let module Ct = Fmm_analysis.Certify in
      let module Tc = Fmm_analysis.Trace_check in
      let module Lint = Fmm_analysis.Cdag_lint in
      let module Diag = Fmm_analysis.Diagnostic in
      let n = 16 and mm = 64 in
      let section = "hybrid Strassen H^{16x16}, M = 64" in
      List.iter
        (fun cutoff ->
          let c = Cd.build ~cutoff S.strassen ~n in
          let w = Fmm_machine.Workload.of_cdag c in
          let order = Ord.recursive_dfs c in
          let lint_rep = Lint.lint c in
          if not (Diag.is_clean lint_rep) then
            failwith
              (Printf.sprintf "HY1: cutoff %d lints dirty (%d errors)" cutoff
                 (Diag.n_errors lint_rep));
          let cert =
            Obs.time m (Printf.sprintf "certify cutoff=%d" cutoff) (fun () ->
                Ct.run ~jobs:(jobs ()) ~cdag:c ~cache_size:mm w ~order)
          in
          if not (Ct.certified cert) then
            failwith (Printf.sprintf "HY1: cutoff %d fails certification" cutoff);
          let sched = Ex.schedule c ~cache_size:mm Ex.Lru in
          let tc = Tc.check ~cache_size:mm w sched.Sch.trace in
          if not (Diag.is_clean tc.Tc.report) then
            failwith
              (Printf.sprintf "HY1: cutoff %d trace has %d replay violations"
                 cutoff
                 (Diag.n_errors tc.Tc.report));
          let v =
            Ex.verify_sched ~seed:7 ~backends:[ `F64; `Zp ] c ~cache_size:mm
              ~policy_name:"lru" sched
          in
          if not (Ex.verification_ok v) then
            failwith
              (Printf.sprintf
                 "HY1: cutoff %d executed result or counters diverge" cutoff);
          let io = Tr.io sched.Sch.counters in
          let bound = B.hybrid_memdep ~n ~m:mm ~p:1 ~cutoff () in
          Obs.rowf m ~section
            ~params:[ ("cutoff", i cutoff) ]
            [
              ("vertices", i (Cd.n_vertices c));
              ("edges", i (Cd.n_edges c));
              ("io", i io);
              ("hybrid bound", f bound);
              ("ratio", f (float_of_int io /. bound));
              ("lint", mark (Diag.is_clean lint_rep));
              ("certified", mark (Ct.certified cert));
              ("violations", i (Diag.n_errors tc.Tc.report));
              ("executed", mark (Ex.verification_ok v));
            ])
        [ 1; 2; 4; 8; 16 ];
      Obs.note m
        "(cutoff 1 is node-for-node the uniform fast CDAG, cutoff 16 the \
         pure classical one; every intermediate cutoff passes the same \
         battery — the hard gates fail the experiment on any divergence)")

let _hy2 =
  define ~id:"HY2" ~title:"hybrid sweep - measured I/O vs De Stefani bounds"
    ~doc:
      "Sweep every cutoff of hybrid Strassen H^{32x32} across fast-memory \
       sizes: LRU I/O on the recursive order vs the hybrid \
       memory-dependent lower bound (the gated ratios), the I/O-optimal \
       cutoff per M, and the M-independent flop-optimal cutoff from the \
       executor's counters — the NE2 crossover axis."
    (fun m ->
      let module K = Fmm_exec.Kernel in
      let n = 32 in
      let cutoffs = [ 1; 2; 4; 8; 16; 32 ] in
      let mems = [ 64; 256 ] in
      let section = "hybrid Strassen H^{32x32} sweep" in
      (* flops are M-independent: one kernel run per cutoff *)
      let flops =
        List.map
          (fun cutoff ->
            let rng = Fmm_util.Prng.create ~seed:1 in
            let a = K.random rng n and b = K.random rng n in
            let _, fl = K.fast_mul ~cutoff S.strassen a b in
            (cutoff, fl.K.adds + fl.K.mults))
          cutoffs
      in
      let points =
        List.concat_map
          (fun mm ->
            List.map
              (fun cutoff ->
                let c = Cd.build ~cutoff S.strassen ~n in
                let w = Fmm_machine.Workload.of_cdag c in
                let order = Ord.recursive_dfs c in
                let io =
                  Obs.time m
                    (Printf.sprintf "lru M=%d cutoff=%d" mm cutoff)
                    (fun () ->
                      Tr.io (Sch.run_lru w ~cache_size:mm order).Sch.counters)
                in
                let bound = B.hybrid_memdep ~n ~m:mm ~p:1 ~cutoff () in
                Obs.rowf m ~section
                  ~params:[ ("M", i mm); ("cutoff", i cutoff) ]
                  [
                    ("io", i io);
                    ("hybrid bound", f bound);
                    ("ratio", f (float_of_int io /. bound));
                    ("flops", i (List.assoc cutoff flops));
                    ("within bound", mark (float_of_int io >= bound));
                  ];
                (mm, cutoff, io))
              cutoffs)
          mems
      in
      let section = "optimal cutoffs" in
      let flop_best =
        fst
          (List.fold_left
             (fun (bc, bf) (c, fl) -> if fl < bf then (c, fl) else (bc, bf))
             (List.hd flops) (List.tl flops))
      in
      List.iter
        (fun mm ->
          let mine =
            List.filter_map
              (fun (m', c, io) -> if m' = mm then Some (c, io) else None)
              points
          in
          let io_best, min_io =
            List.fold_left
              (fun (bc, bio) (c, io) -> if io < bio then (c, io) else (bc, bio))
              (List.hd mine) (List.tl mine)
          in
          Obs.rowf m ~section
            ~params:[ ("M", i mm) ]
            [
              ("io-optimal cutoff", i io_best);
              ("min io", i min_io);
              ("flop-optimal cutoff", i flop_best);
              ("crossover P*", i (B.hybrid_crossover_p ~n ~m:mm ~cutoff:io_best ()));
            ])
        mems;
      Obs.note m
        "(the flop-optimal cutoff is M-independent — NE2's crossover axis; \
         the I/O-optimal cutoff moves with M exactly as the hybrid bound \
         predicts: larger caches favor deeper fast recursion)")

let _perf =
  define ~id:"PERF" ~title:"kernel timings (bechamel, monotonic clock)"
    (fun m ->
      (* capture everything before opening Bechamel: it exports modules
         that shadow our S/T aliases *)
      let rng = Fmm_util.Prng.create ~seed:1 in
      let a64 = MI.random ~rng ~rows:64 ~cols:64 ~range:5 in
      let b64 = MI.random ~rng ~rows:64 ~cols:64 ~range:5 in
      let strassen = S.strassen and winograd = S.winograd in
      let enc = Enc.encoder_bipartite strassen Enc.A_side in
      let w8 = work strassen 8 in
      let o8 = dfs_order strassen 8 in
      let c4 = cdag strassen 4 in
      let open Bechamel in
      let open Toolkit in
      let mk name f = Test.make ~name (Staged.stage f) in
      let tests =
        [
          mk "strassen multiply 64x64 (int)" (fun () ->
              ignore (A.Apply_int.multiply strassen a64 b64));
          mk "winograd multiply 64x64 (int)" (fun () ->
              ignore (A.Apply_int.multiply winograd a64 b64));
          mk "classical multiply 64x64 (int)" (fun () -> ignore (MI.mul a64 b64));
          mk "ks-abmm multiply 64x64 (int)" (fun () ->
              ignore (AB.Transform_int.multiply AB.ks_winograd a64 b64));
          mk "cdag build n=8" (fun () -> ignore (Cd.build strassen ~n:8));
          mk "lemma 3.1 battery (127 subsets)" (fun () ->
              ignore (EL.check_lemma_3_1 enc));
          mk "min dominator H^{4x4} (max-flow)" (fun () ->
              ignore
                (Fmm_graph.Vertex_cut.min_dominator (Cd.graph c4)
                   ~sources:(Array.to_list (Cd.inputs c4))
                   ~targets:(Array.to_list (Cd.outputs c4))));
          mk "lru simulation n=8 M=32" (fun () ->
              ignore (Sch.run_lru w8 ~cache_size:32 o8));
          mk "implicit create n=256" (fun () ->
              ignore (Fmm_cdag.Implicit.create strassen ~n:256));
          mk "implicit stream lru n=16 M=64" (fun () ->
              let imp = Fmm_cdag.Implicit.create strassen ~n:16 in
              ignore (Fmm_machine.Stream_exec.run_lru imp ~cache_size:64 ()));
          mk "par_exec_limited n=16 M=64" (fun () ->
              let c = cdag strassen 16 in
              let w = Fmm_machine.Workload.of_cdag c in
              let assignment = PE.bfs_assignment c ~depth:1 ~procs:7 in
              ignore (PE.run_limited w ~procs:7 ~assignment ~local_memory:64));
          mk "pebble savage-dag (exact, both)" (fun () ->
              ignore (Pb.compare_recomputation (Pd.recomputation_wins ())));
        ]
      in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
      let instances = Instance.[ monotonic_clock ] in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
      in
      List.iter
        (fun test ->
          List.iter
            (fun elt ->
              let raw = Benchmark.run cfg instances elt in
              let est = Analyze.one ols Instance.monotonic_clock raw in
              let ns =
                match Analyze.OLS.estimates est with
                | Some [ x ] -> x
                | _ -> nan
              in
              Obs.rowf m ~section:"kernel timings"
                ~params:[ ("kernel", Obs.Str (Test.Elt.name elt)) ]
                [ ("ns/run", Obs.Float ns) ])
            (Test.elements test))
        tests)

(* The canonical experiment list, in registration order. *)
let all () = Exp.Registry.all registry
let ids () = Exp.Registry.ids registry
let select filter = Exp.Registry.select registry filter

(* Run a selection on the pool: outcomes in input order, inner
   fan-outs (DEEP, L37) at the same level. Deterministic at any
   [jobs] modulo wall clocks. *)
let run_selected ?(jobs = 1) es =
  set_jobs jobs;
  Exp.run_all ~jobs es
