(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) and times the heavy kernels with
   bechamel. The experiments themselves live in the registry
   (Fmm_experiments.Experiments); this executable runs them on the
   Fmm_par domain pool (FMMLAB_JOBS, default 1 = sequential) and prints
   each outcome through the table sink, in registration order
   regardless of the pool schedule. Absolute constants differ from the
   paper (our substrate is a simulator, not the authors' testbed —
   there is none: it is a theory paper, and this harness is the
   empirical counterpart of its proofs).

   `fmmlab bench` runs the same registry with filtering, JSON output,
   baseline regression gating and an explicit --jobs flag. *)

let () =
  let t0 = Unix.gettimeofday () in
  let jobs = Fmm_par.Pool.jobs_from_env () in
  let outcomes =
    Fmm_experiments.Experiments.run_selected ~jobs
      (Fmm_experiments.Experiments.all ())
  in
  List.iter Fmm_obs.Sink.print_outcome outcomes;
  Printf.printf "\nall benches done in %.1f s (jobs=%d)\n"
    (Unix.gettimeofday () -. t0)
    jobs
