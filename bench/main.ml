(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) and times the heavy kernels with
   bechamel. The experiments themselves live in the registry
   (Fmm_experiments.Experiments); this executable just runs them all in
   order and prints each outcome through the table sink. Absolute
   constants differ from the paper (our substrate is a simulator, not
   the authors' testbed — there is none: it is a theory paper, and this
   harness is the empirical counterpart of its proofs).

   `fmmlab bench` runs the same registry with filtering, JSON output and
   baseline regression gating. *)

let () =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      Fmm_obs.Sink.print_outcome (Fmm_obs.Experiment.run e))
    (Fmm_experiments.Experiments.all ());
  Printf.printf "\nall benches done in %.1f s\n" (Unix.gettimeofday () -. t0)
